"""Benchmarks of the experiment engine itself → ``BENCH_engine.json``.

Four measurements, from the inside out:

* **Kernel (stress)** — the optimized simulation kernel versus a frozen
  pre-PR copy (:mod:`repro.experiments._baseline_kernel`), both driven by
  an identical synthetic stress workload (timer-heavy processes, event
  waits, cancelled timers, process churn, trace records — the same mix a
  real app run produces). The workloads assert identical event counts
  before timing is trusted.
* **Kernel (steady)** — the same frozen baseline versus the live kernel on
  its timing-wheel queue with steady-state fast-forward armed, driven by
  an exactly periodic frame workload. The fast-forwarded arm must (a)
  actually engage and (b) produce a bitwise-identical trace digest, or the
  benchmark refuses to report a number.
* **Single run** — wall-clock of one representative app point
  (UHD video on vSoC) through :func:`~repro.experiments.engine.execute_spec`.
* **Suite** — a small emulator×app sweep run three ways: cold serial, cold
  parallel (``--jobs``), and warm (same cache as the parallel run). Reports
  the parallel speedup, the execution mode (``inline`` vs ``pool``), the
  warm-rerun cache hit rate, and whether parallel results were
  bit-identical to serial.

Usage::

    python -m repro.experiments bench --jobs 4 [--quick] [--out PATH]
    python -m repro.experiments bench --check [--history PATH] [--tolerance F]

``validate_bench_schema`` is the single source of truth for the JSON's
shape; CI calls it against the generated artifact. Every run appends its
headline metrics to ``BENCH_history.jsonl``; ``--check`` gates the run on
the history's EWMA baselines (see :mod:`repro.obs.baseline`).
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import shutil
import sys
import tempfile
import time
from typing import Any, Dict, List, Optional

from repro.experiments.engine import (
    RunCache,
    default_jobs,
    execute_spec,
    run_many,
    specs_for_apps,
)

#: Schema identifier written into (and required from) every bench JSON.
#: v2 added ``kernel.scales`` (two-scale A/B incl. fast-forward) and
#: ``suites.*.parallel_mode``.
BENCH_SCHEMA = "repro-bench-engine-v2"


# ---------------------------------------------------------------------------
# Kernel stress workload (runs on both the live and the frozen kernel)
# ---------------------------------------------------------------------------

def kernel_stress(ns: Any, workers: int = 32, duration_ms: float = 2_000.0) -> int:
    """Drive one kernel namespace with the synthetic hot-path mix.

    ``ns`` is any module-like object exposing ``Simulator``, ``Timeout``,
    ``SimEvent`` and ``TraceLog`` with the kernel API. Returns the number
    of trace records produced — identical across kernels by construction,
    which the benchmark asserts before trusting the timing.
    """
    sim = ns.Simulator()
    trace = ns.TraceLog()
    record = trace.record
    Timeout = ns.Timeout
    SimEvent = ns.SimEvent

    def child(i: int):
        yield Timeout(0.05)
        record(sim.now, "bench.child", worker=i)
        return i

    def pacer(i: int):
        period = 0.8 + (i % 7) * 0.21
        tick = 0
        while True:
            yield Timeout(period)
            tick += 1
            record(sim.now, "bench.tick", worker=i, tick=tick)
            if tick % 8 == 0:
                # A timer that never fires: exercises cancel + lazy deletion.
                call = sim.schedule(period * 2.0, record, sim.now, "bench.never")
                call.cancel()
            if tick % 16 == 0:
                # One-shot event fired by a scheduled callback.
                event = SimEvent(sim, name=f"ev-{i}-{tick}")
                sim.schedule(0.2, event.fire, tick)
                value = yield event
                record(sim.now, "bench.event", worker=i, value=value)
            if tick % 32 == 0:
                # Short-lived child process, joined on: process churn.
                value = yield sim.spawn(child(i), name=f"child-{i}-{tick}")
                record(sim.now, "bench.joined", worker=i, value=value)

    for i in range(workers):
        sim.spawn(pacer(i), name=f"pacer-{i}")
    sim.run(until=duration_ms)
    return trace.recorded_total


def bench_kernel(workers: int = 32, duration_ms: float = 2_000.0,
                 repeats: int = 3) -> Dict[str, Any]:
    """Best-of-N timing of the frozen baseline vs the live kernel."""
    from types import SimpleNamespace

    import repro.experiments._baseline_kernel as baseline_ns
    from repro.sim.kernel import Simulator
    from repro.sim.primitives import SimEvent, Timeout
    from repro.sim.tracing import TraceLog

    live_ns = SimpleNamespace(
        Simulator=Simulator, Timeout=Timeout, SimEvent=SimEvent, TraceLog=TraceLog
    )
    import gc

    counts: Dict[str, int] = {}
    timings = {"baseline": float("inf"), "optimized": float("inf")}
    # Interleave repeats so slow host-level drift hits both kernels equally,
    # and keep the collector out of the timed sections.
    for _ in range(repeats):
        for label, ns in (("baseline", baseline_ns), ("optimized", live_ns)):
            gc.collect()
            gc_was_enabled = gc.isenabled()
            gc.disable()
            try:
                t0 = time.perf_counter()
                counts[label] = kernel_stress(ns, workers, duration_ms)
                timings[label] = min(timings[label], time.perf_counter() - t0)
            finally:
                if gc_was_enabled:
                    gc.enable()
    if counts["baseline"] != counts["optimized"]:
        raise RuntimeError(
            f"kernel stress diverged: baseline produced {counts['baseline']} "
            f"records, optimized {counts['optimized']} — timing not comparable"
        )
    return {
        "workers": workers,
        "duration_ms": duration_ms,
        "events": counts["optimized"],
        "baseline_s": round(timings["baseline"], 4),
        "optimized_s": round(timings["optimized"], 4),
        "speedup": round(timings["baseline"] / timings["optimized"], 3),
    }


# ---------------------------------------------------------------------------
# Kernel steady-state workload (frozen heap vs live wheel + fast-forward)
# ---------------------------------------------------------------------------

#: Frame period of the steady workload: a dyadic stand-in for vsync.
STEADY_PERIOD_MS = 16.0

#: Per-frame pipeline stages (ms). All multiples of 0.25, summing to the
#: frame period exactly — the workload is on the fast-forward grid by
#: construction once its settle transient decays.
STEADY_STAGES = (1.0, 0.5, 2.0, 0.5, 1.5, 1.0, 0.25, 2.25, 1.5, 0.5, 2.0, 3.0)

#: Frames of decaying timing perturbation before steady state (mimics the
#: EWMA predictors converging in a real pipeline).
STEADY_SETTLE_FRAMES = 16


class _SteadyWorker:
    """One synthetic frame pipeline for :func:`kernel_steady`.

    The per-frame counter lives on the *object* and is read at the point
    of use — the cooperative contract fast-forward requires: a generator
    local carried across the cycle boundary would write a stale value
    back over the replayed counter after a jump.

    ``substeps`` (a power of two) splits every stage into that many equal
    timeouts: same frame period, proportionally more dispatched events —
    the knob for modelling finer-grained pipelines.
    """

    __slots__ = ("sim", "trace", "Timeout", "index", "record_every",
                 "substeps", "frame")

    def __init__(self, sim, trace, Timeout, index, record_every, substeps=1):
        self.sim = sim
        self.trace = trace
        self.Timeout = Timeout
        self.index = index
        self.record_every = record_every
        self.substeps = substeps
        self.frame = 0

    def run(self):
        Timeout = self.Timeout
        sub = self.substeps
        yield Timeout((self.index % 16) * 0.25)  # spread worker phases
        while True:
            # Decaying perturbation: a dyadic shift of one stage boundary
            # early in the run (cancels within the frame), so the detector
            # must wait out a genuine transient. Safe to read into a local
            # here: it is 0.0 for every frame a jump could land in (jumps
            # require settled, on-grid cycles).
            extra = (
                STEADY_PERIOD_MS * 2.0 ** -(self.frame + 4) / sub
                if self.frame < STEADY_SETTLE_FRAMES else 0.0
            )
            for j, stage in enumerate(STEADY_STAGES):
                step = stage / sub
                if j == 2:
                    yield Timeout(step + extra)
                elif j == len(STEADY_STAGES) - 1:
                    yield Timeout(step - extra)
                else:
                    yield Timeout(step)
                for _ in range(sub - 1):
                    yield Timeout(step)
            # self.frame at the point of use, never a pre-cycle local: the
            # in-flight cycle during a jump must see the replayed counter.
            if self.frame % self.record_every == 0:
                self.trace.record(
                    self.sim.now, "steady.frame",
                    worker=self.index, frame=self.frame, latency=13.0,
                )
            self.frame += 1


def kernel_steady(ns: Any, workers: int = 64, frames: int = 650,
                  record_every: int = 1, substeps: int = 1,
                  queue: Optional[str] = None,
                  fast_forward: bool = False,
                  max_multiple: int = 8) -> Any:
    """Run the steady frame workload on one kernel namespace.

    Returns the :class:`TraceLog` (digest it *outside* any timed section).
    With ``fast_forward`` the live kernel's fixed-point detector is armed
    and must engage — a silent fall-back to event-by-event would publish
    a meaningless "speedup", so that is an error here.
    """
    sim = ns.Simulator() if queue is None else ns.Simulator(queue=queue)
    trace = ns.TraceLog()
    pool = [
        _SteadyWorker(sim, trace, ns.Timeout, i, record_every, substeps)
        for i in range(workers)
    ]
    for worker in pool:
        sim.spawn(worker.run(), name=f"steady-{worker.index}")
    horizon = frames * STEADY_PERIOD_MS + 4.0
    ctl = None
    if fast_forward:
        from repro.sim import fastforward
        from repro.sim.fastforward import FastForwardController, TraceChannel

        prev = fastforward.enabled_default()
        fastforward.set_enabled(True)  # the A/B measures the feature itself
        try:
            ctl = FastForwardController(
                sim, period=STEADY_PERIOD_MS, horizon=horizon,
                max_multiple=max_multiple,
            )
            ctl.add_channel(TraceChannel(trace))
            for worker in pool:
                ctl.track_counter(worker, "frame")
                # The record cadence *branches* on frame % record_every, so
                # that residue must be fingerprinted, not just journaled —
                # otherwise a quiet window looks one-frame-periodic and the
                # detector would confirm a cycle that under-replays the
                # trace (the digest check below would catch it, loudly).
                ctl.watch(lambda w=worker: w.frame % w.record_every)
            ctl.install()
        finally:
            fastforward.set_enabled(prev)
    sim.run(until=horizon)
    if ctl is not None and not ctl.engaged:
        raise RuntimeError(
            "steady-state fast-forward never engaged "
            f"(reason: {ctl.disabled_reason!r}) — speedup would be fiction"
        )
    return trace


def _trace_digest(trace: Any) -> str:
    """Order-sensitive bitwise digest of every retained trace record."""
    digest = hashlib.sha256()
    # ``_records`` rather than iter(): the frozen baseline TraceLog
    # predates __iter__ and must stay byte-for-byte untouched.
    for r in trace._records:
        digest.update(repr((r.time, r.kind, sorted(r.fields.items()))).encode())
        digest.update(b"\0")
    digest.update(str(trace.recorded_total).encode())
    return digest.hexdigest()


def bench_kernel_steady(workers: int = 64, frames: int = 650,
                        record_every: int = 1, substeps: int = 1,
                        max_multiple: int = 8,
                        repeats: int = 3) -> Dict[str, Any]:
    """Frozen heap baseline vs live wheel + fast-forward on the steady
    workload. Bit-identity of the two traces is asserted before the
    timing is trusted (the fast-forward soundness claim, enforced)."""
    from types import SimpleNamespace

    import repro.experiments._baseline_kernel as baseline_ns
    from repro.sim.kernel import Simulator
    from repro.sim.primitives import Timeout
    from repro.sim.tracing import TraceLog

    live_ns = SimpleNamespace(Simulator=Simulator, Timeout=Timeout, TraceLog=TraceLog)
    import gc

    arms = (
        ("baseline", baseline_ns, dict(queue=None, fast_forward=False)),
        ("optimized", live_ns, dict(queue="wheel", fast_forward=True)),
    )
    digests: Dict[str, str] = {}
    records: Dict[str, int] = {}
    timings = {"baseline": float("inf"), "optimized": float("inf")}
    for _ in range(repeats):
        for label, ns, kwargs in arms:
            gc.collect()
            gc_was_enabled = gc.isenabled()
            gc.disable()
            try:
                t0 = time.perf_counter()
                trace = kernel_steady(
                    ns, workers=workers, frames=frames,
                    record_every=record_every, substeps=substeps,
                    max_multiple=max_multiple, **kwargs
                )
                timings[label] = min(timings[label], time.perf_counter() - t0)
            finally:
                if gc_was_enabled:
                    gc.enable()
            digests[label] = _trace_digest(trace)
            records[label] = trace.recorded_total
    if digests["baseline"] != digests["optimized"]:
        raise RuntimeError(
            "steady kernel A/B diverged: fast-forwarded trace digest "
            f"{digests['optimized'][:16]} != baseline "
            f"{digests['baseline'][:16]} "
            f"({records['optimized']} vs {records['baseline']} records)"
        )
    return {
        "workers": workers,
        "frames": frames,
        "record_every": record_every,
        "substeps": substeps,
        # Scheduled timeout events the baseline dispatches one by one —
        # the work the fast-forwarded arm provably skips.
        "events": workers * frames * len(STEADY_STAGES) * substeps,
        "records": records["optimized"],
        "trace_digest": digests["optimized"],
        "baseline_s": round(timings["baseline"], 4),
        "optimized_s": round(timings["optimized"], 4),
        "speedup": round(timings["baseline"] / timings["optimized"], 3),
    }


def bench_kernel_scales(quick: bool = False) -> Dict[str, Any]:
    """The two CI-gated kernel A/B scales (plus a long-run demo point).

    * ``stress_50k`` — the aperiodic stress mix, ~56k trace events: what
      the kernel refactor alone buys (fast-forward never engages here).
    * ``steady_500k`` — ~500k scheduled events of exactly periodic frame
      work: what the timing wheel + steady-state fast-forward buy.
    * ``long_steady`` (full runs only) — ~1.5M events with sparse trace
      records: the long-run regime where skipped cycles dominate.
    """
    scales: Dict[str, Any] = {
        "stress_50k": bench_kernel(),
        "steady_500k": bench_kernel_steady(workers=64, frames=650),
    }
    if not quick:
        scales["long_steady"] = bench_kernel_steady(
            workers=8, frames=18_000, record_every=8, substeps=2, repeats=2
        )
    return scales


# ---------------------------------------------------------------------------
# Engine benchmarks
# ---------------------------------------------------------------------------

def _suite_specs(duration_ms: float, per_category: int, emulators) -> List[Any]:
    from repro.apps.catalog import emerging_app_params

    params = emerging_app_params(seed=0, per_category=per_category)
    specs: List[Any] = []
    for name in emulators:
        specs.extend(specs_for_apps(params, name, duration_ms=duration_ms))
    return specs


def bench_single_run(duration_ms: float = 8_000.0) -> Dict[str, Any]:
    """Wall-clock of one representative uncached app point."""
    from repro.experiments.engine import RunSpec

    spec = RunSpec(
        app_factory="repro.apps.video:UhdVideoApp",
        app_kwargs={},
        emulator="vSoC",
        duration_ms=duration_ms,
    )
    t0 = time.perf_counter()
    run = execute_spec(spec)
    wall = time.perf_counter() - t0
    return {
        "app": run.result.app,
        "emulator": "vSoC",
        "duration_ms": duration_ms,
        "wall_s": round(wall, 4),
        "fps": round(run.result.fps, 2),
    }


def bench_suite(jobs: int, duration_ms: float = 4_000.0, per_category: int = 1,
                emulators=("vSoC", "GAE", "QEMU-KVM"),
                warm: bool = True) -> Dict[str, Any]:
    """Cold-serial vs cold-parallel vs warm-rerun over one sweep."""
    specs = _suite_specs(duration_ms, per_category, emulators)
    tmp = tempfile.mkdtemp(prefix="repro-bench-cache-")
    try:
        serial_cache = RunCache(os.path.join(tmp, "serial"))
        parallel_cache = RunCache(os.path.join(tmp, "parallel"))

        serial = run_many(specs, jobs=1, cache=serial_cache)
        parallel = run_many(specs, jobs=jobs, cache=parallel_cache)
        identical = serial.results == parallel.results

        suite: Dict[str, Any] = {
            "specs": len(specs),
            # "jobs" is what the sweep *got*; requested vs effective make an
            # oversubscribed host visible (a 1-CPU runner asked for --jobs 4
            # used to report a meaningless 0.3x "speedup").
            "jobs": parallel.effective_jobs,
            "jobs_requested": jobs,
            "jobs_effective": parallel.effective_jobs,
            # How the "parallel" leg actually executed. On a 1-CPU host the
            # engine never spins a pool up, so parallel_speedup there is
            # inline-vs-inline noise (~1.0x), not pool overhead.
            "parallel_mode": parallel.parallel_mode,
            "serial_s": round(serial.wall_s, 4),
            "parallel_s": round(parallel.wall_s, 4),
            "parallel_speedup": round(serial.wall_s / parallel.wall_s, 3)
            if parallel.wall_s > 0 else None,
            "parallel_identical": identical,
            "warm_s": None,
            "warm_cache_hit_rate": None,
        }
        if warm:
            rerun = run_many(specs, jobs=jobs, cache=parallel_cache)
            suite["warm_s"] = round(rerun.wall_s, 4)
            suite["warm_cache_hit_rate"] = round(rerun.hit_rate, 4)
            suite["warm_identical"] = rerun.results == serial.results
        return suite
    finally:
        shutil.rmtree(tmp, ignore_errors=True)


def bench_budget(duration_ms: float = 4_000.0) -> Dict[str, float]:
    """Latency-budget category totals of one attributed run (untimed).

    A short UHD-video-on-vSoC run with attribution on, reduced to
    ``budget.<category>_ms`` history metrics. Deterministic — the run is a
    pure function of its seed — so the sentinel can EWMA-baseline each
    category and, when ``--check`` gates a regression, answer *where* the
    time went (see :meth:`repro.obs.baseline.RegressionSentinel.attribution_diff`).
    """
    from repro.experiments.engine import RunSpec
    from repro.obs.baseline import budget_history_metrics
    from repro.obs.critical import budget_from_snapshot

    spec = RunSpec(
        app_factory="repro.apps.video:UhdVideoApp",
        app_kwargs={},
        emulator="vSoC",
        duration_ms=duration_ms,
        telemetry=True,
        attribution=True,
    )
    run = execute_spec(spec)
    budget = budget_from_snapshot(run.telemetry)
    if budget is None:
        return {}
    return budget_history_metrics(budget)


def run_bench(jobs: Optional[int] = None, quick: bool = False,
              warm: bool = True) -> Dict[str, Any]:
    """All three benchmarks → the BENCH_engine.json payload."""
    if jobs is None:
        jobs = default_jobs()
    duration = 2_000.0 if quick else 4_000.0
    # The kernel A/Bs keep their full sizes even under --quick: sub-second
    # workloads are dominated by noise and report junk ratios. (--quick
    # only drops the optional long_steady demo point.)
    scales = bench_kernel_scales(quick=quick)
    kernel = dict(scales["stress_50k"])
    kernel["scales"] = scales
    report = {
        "schema": BENCH_SCHEMA,
        "host": {
            "cpu_count": os.cpu_count(),
            "available_cpus": default_jobs(),
            "python": platform.python_version(),
            "platform": sys.platform,
        },
        "kernel": kernel,
        "single_run": bench_single_run(duration_ms=4_000.0 if quick else 8_000.0),
        "suites": {
            "emerging": bench_suite(jobs=jobs, duration_ms=duration, warm=warm),
        },
    }
    return report


def validate_bench_schema(data: Any) -> List[str]:
    """Schema check for a bench report; returns the list of problems."""
    problems: List[str] = []

    def need(mapping, key, types, where):
        if not isinstance(mapping, dict) or key not in mapping:
            problems.append(f"{where}: missing {key!r}")
            return None
        value = mapping[key]
        if not isinstance(value, types):
            problems.append(f"{where}.{key}: expected {types}, got {type(value).__name__}")
            return None
        return value

    if need(data, "schema", str, "root") != BENCH_SCHEMA:
        problems.append(f"root.schema: expected {BENCH_SCHEMA!r}")
    host = need(data, "host", dict, "root")
    if host is not None:
        need(host, "cpu_count", int, "host")
        need(host, "python", str, "host")
    kernel = need(data, "kernel", dict, "root")
    if kernel is not None:
        for key in ("baseline_s", "optimized_s", "speedup"):
            value = need(kernel, key, (int, float), "kernel")
            if value is not None and value <= 0:
                problems.append(f"kernel.{key}: must be positive, got {value}")
        scales = need(kernel, "scales", dict, "kernel")
        if scales is not None:
            for required in ("stress_50k", "steady_500k"):
                scale = need(scales, required, dict, "kernel.scales")
                if scale is None:
                    continue
                where = f"kernel.scales.{required}"
                need(scale, "events", int, where)
                for key in ("baseline_s", "optimized_s", "speedup"):
                    value = need(scale, key, (int, float), where)
                    if value is not None and value <= 0:
                        problems.append(
                            f"{where}.{key}: must be positive, got {value}"
                        )
            steady = scales.get("steady_500k")
            if isinstance(steady, dict):
                need(steady, "trace_digest", str, "kernel.scales.steady_500k")
    single = need(data, "single_run", dict, "root")
    if single is not None:
        need(single, "wall_s", (int, float), "single_run")
    suites = need(data, "suites", dict, "root")
    if isinstance(suites, dict):
        if not suites:
            problems.append("suites: must contain at least one suite")
        for name, suite in suites.items():
            where = f"suites.{name}"
            need(suite, "specs", int, where)
            need(suite, "jobs", int, where)
            requested = need(suite, "jobs_requested", int, where)
            effective = need(suite, "jobs_effective", int, where)
            if isinstance(requested, int) and isinstance(effective, int):
                if effective < 1:
                    problems.append(f"{where}.jobs_effective: must be >= 1")
                if effective > max(requested, 1):
                    problems.append(f"{where}.jobs_effective: {effective} "
                                    f"exceeds requested {requested}")
            mode = need(suite, "parallel_mode", str, where)
            if mode is not None and mode not in ("inline", "pool"):
                problems.append(
                    f"{where}.parallel_mode: expected 'inline' or 'pool', "
                    f"got {mode!r}"
                )
            need(suite, "serial_s", (int, float), where)
            need(suite, "parallel_s", (int, float), where)
            identical = need(suite, "parallel_identical", bool, where)
            if identical is False:
                problems.append(f"{where}.parallel_identical: parallel results "
                                "diverged from serial")
            rate = suite.get("warm_cache_hit_rate") if isinstance(suite, dict) else None
            if rate is not None and not (
                isinstance(rate, (int, float)) and 0.0 <= rate <= 1.0
            ):
                problems.append(f"{where}.warm_cache_hit_rate: not in [0, 1]")
    return problems


def cmd_bench(jobs: Optional[int] = None, out_path: str = "BENCH_engine.json",
              quick: bool = False, cache: bool = True,
              check: bool = False, history_path: Optional[str] = None,
              tolerance: Optional[float] = None) -> int:
    """CLI entry point: run the benchmarks, print and write the report.

    With ``check``, the report is judged against the EWMA baselines of the
    recorded history *before* being appended to it; a regression verdict
    turns into a nonzero exit code (the CI gate). Without ``check`` the run
    is still appended, so the history grows either way.
    """
    from repro.obs.baseline import (
        DEFAULT_HISTORY_PATH,
        DEFAULT_TOLERANCE,
        RegressionSentinel,
    )

    report = run_bench(jobs=jobs, quick=quick, warm=cache)
    problems = validate_bench_schema(report)
    kernel = report["kernel"]
    suite = report["suites"]["emerging"]
    for name, scale in kernel["scales"].items():
        print(f"Kernel [{name}]: baseline {scale['baseline_s']:.3f}s -> "
              f"optimized {scale['optimized_s']:.3f}s "
              f"({scale['speedup']:.2f}x, {scale['events']} events)")
    print(f"Single run: {report['single_run']['wall_s']:.3f}s "
          f"({report['single_run']['app']} on vSoC, "
          f"{report['single_run']['duration_ms']:.0f} sim-ms)")
    print(f"Suite ({suite['specs']} specs): serial {suite['serial_s']:.2f}s, "
          f"parallel x{suite['jobs_effective']} "
          f"(requested {suite['jobs_requested']}, "
          f"mode {suite['parallel_mode']}) {suite['parallel_s']:.2f}s "
          f"(speedup {suite['parallel_speedup']}), "
          f"identical={suite['parallel_identical']}")
    if suite["warm_cache_hit_rate"] is not None:
        print(f"Warm rerun: {suite['warm_s']:.3f}s, "
              f"cache hit rate {100 * suite['warm_cache_hit_rate']:.0f}%")
    with open(out_path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"Wrote {out_path}")

    sentinel = RegressionSentinel(
        path=history_path or DEFAULT_HISTORY_PATH,
        tolerance=tolerance if tolerance is not None else DEFAULT_TOLERANCE,
    )
    budget_metrics = bench_budget(duration_ms=2_000.0 if quick else 4_000.0)
    verdict = sentinel.check(report)
    prior_history = sentinel.load()  # baseline for triage excludes this run
    sentinel.append(report, extra_metrics=budget_metrics,
                    note="quick" if quick else None)
    print(f"Sentinel ({verdict.history_len} prior runs, "
          f"tolerance ±{100 * sentinel.tolerance:.0f}%):")
    if verdict.skipped_mismatched:
        print(f"  skipped {verdict.skipped_mismatched} history entr"
              f"{'y' if verdict.skipped_mismatched == 1 else 'ies'} recorded "
              f"under a different parallel_mode "
              f"(current: {verdict.parallel_mode})")
    for v in verdict.verdicts:
        print(f"  {v.describe()}")
    if not verdict.ok:
        print(f"REGRESSION: {len(verdict.regressions)} metric(s) beyond "
              "tolerance" + ("" if check else " (advisory; rerun with --check "
                             "to gate on this)"))
        # Regression triage: diff this run's latency budget against the
        # per-category EWMA baselines and name where the time went.
        triage = sentinel.attribution_diff(budget_metrics, history=prior_history)
        print(f"  attribution: {triage['headline']}")
        attribution_path = out_path + ".attribution.json"
        with open(attribution_path, "w", encoding="utf-8") as fh:
            json.dump(triage, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"  wrote attribution diff: {attribution_path}")

    if problems:
        for problem in problems:
            print(f"SCHEMA PROBLEM: {problem}")
        return 1
    if check and not verdict.ok:
        return 2
    return 0
