"""Benchmarks of the experiment engine itself → ``BENCH_engine.json``.

Three measurements, from the inside out:

* **Kernel** — the optimized simulation kernel versus a frozen pre-PR copy
  (:mod:`repro.experiments._baseline_kernel`), both driven by an identical
  synthetic stress workload (timer-heavy processes, event waits, cancelled
  timers, process churn, trace records — the same mix a real app run
  produces). The workloads assert identical event counts before timing is
  trusted.
* **Single run** — wall-clock of one representative app point
  (UHD video on vSoC) through :func:`~repro.experiments.engine.execute_spec`.
* **Suite** — a small emulator×app sweep run three ways: cold serial, cold
  parallel (``--jobs``), and warm (same cache as the parallel run). Reports
  the parallel speedup, the warm-rerun cache hit rate, and whether parallel
  results were bit-identical to serial.

Usage::

    python -m repro.experiments bench --jobs 4 [--quick] [--out PATH]
    python -m repro.experiments bench --check [--history PATH] [--tolerance F]

``validate_bench_schema`` is the single source of truth for the JSON's
shape; CI calls it against the generated artifact. Every run appends its
headline metrics to ``BENCH_history.jsonl``; ``--check`` gates the run on
the history's EWMA baselines (see :mod:`repro.obs.baseline`).
"""

from __future__ import annotations

import json
import os
import platform
import shutil
import sys
import tempfile
import time
from typing import Any, Dict, List, Optional

from repro.experiments.engine import (
    RunCache,
    default_jobs,
    execute_spec,
    run_many,
    specs_for_apps,
)

#: Schema identifier written into (and required from) every bench JSON.
BENCH_SCHEMA = "repro-bench-engine-v1"


# ---------------------------------------------------------------------------
# Kernel stress workload (runs on both the live and the frozen kernel)
# ---------------------------------------------------------------------------

def kernel_stress(ns: Any, workers: int = 32, duration_ms: float = 2_000.0) -> int:
    """Drive one kernel namespace with the synthetic hot-path mix.

    ``ns`` is any module-like object exposing ``Simulator``, ``Timeout``,
    ``SimEvent`` and ``TraceLog`` with the kernel API. Returns the number
    of trace records produced — identical across kernels by construction,
    which the benchmark asserts before trusting the timing.
    """
    sim = ns.Simulator()
    trace = ns.TraceLog()
    record = trace.record
    Timeout = ns.Timeout
    SimEvent = ns.SimEvent

    def child(i: int):
        yield Timeout(0.05)
        record(sim.now, "bench.child", worker=i)
        return i

    def pacer(i: int):
        period = 0.8 + (i % 7) * 0.21
        tick = 0
        while True:
            yield Timeout(period)
            tick += 1
            record(sim.now, "bench.tick", worker=i, tick=tick)
            if tick % 8 == 0:
                # A timer that never fires: exercises cancel + lazy deletion.
                call = sim.schedule(period * 2.0, record, sim.now, "bench.never")
                call.cancel()
            if tick % 16 == 0:
                # One-shot event fired by a scheduled callback.
                event = SimEvent(sim, name=f"ev-{i}-{tick}")
                sim.schedule(0.2, event.fire, tick)
                value = yield event
                record(sim.now, "bench.event", worker=i, value=value)
            if tick % 32 == 0:
                # Short-lived child process, joined on: process churn.
                value = yield sim.spawn(child(i), name=f"child-{i}-{tick}")
                record(sim.now, "bench.joined", worker=i, value=value)

    for i in range(workers):
        sim.spawn(pacer(i), name=f"pacer-{i}")
    sim.run(until=duration_ms)
    return trace.recorded_total


def bench_kernel(workers: int = 32, duration_ms: float = 2_000.0,
                 repeats: int = 3) -> Dict[str, Any]:
    """Best-of-N timing of the frozen baseline vs the live kernel."""
    from types import SimpleNamespace

    import repro.experiments._baseline_kernel as baseline_ns
    from repro.sim.kernel import Simulator
    from repro.sim.primitives import SimEvent, Timeout
    from repro.sim.tracing import TraceLog

    live_ns = SimpleNamespace(
        Simulator=Simulator, Timeout=Timeout, SimEvent=SimEvent, TraceLog=TraceLog
    )
    import gc

    counts: Dict[str, int] = {}
    timings = {"baseline": float("inf"), "optimized": float("inf")}
    # Interleave repeats so slow host-level drift hits both kernels equally,
    # and keep the collector out of the timed sections.
    for _ in range(repeats):
        for label, ns in (("baseline", baseline_ns), ("optimized", live_ns)):
            gc.collect()
            gc_was_enabled = gc.isenabled()
            gc.disable()
            try:
                t0 = time.perf_counter()
                counts[label] = kernel_stress(ns, workers, duration_ms)
                timings[label] = min(timings[label], time.perf_counter() - t0)
            finally:
                if gc_was_enabled:
                    gc.enable()
    if counts["baseline"] != counts["optimized"]:
        raise RuntimeError(
            f"kernel stress diverged: baseline produced {counts['baseline']} "
            f"records, optimized {counts['optimized']} — timing not comparable"
        )
    return {
        "workers": workers,
        "duration_ms": duration_ms,
        "events": counts["optimized"],
        "baseline_s": round(timings["baseline"], 4),
        "optimized_s": round(timings["optimized"], 4),
        "speedup": round(timings["baseline"] / timings["optimized"], 3),
    }


# ---------------------------------------------------------------------------
# Engine benchmarks
# ---------------------------------------------------------------------------

def _suite_specs(duration_ms: float, per_category: int, emulators) -> List[Any]:
    from repro.apps.catalog import emerging_app_params

    params = emerging_app_params(seed=0, per_category=per_category)
    specs: List[Any] = []
    for name in emulators:
        specs.extend(specs_for_apps(params, name, duration_ms=duration_ms))
    return specs


def bench_single_run(duration_ms: float = 8_000.0) -> Dict[str, Any]:
    """Wall-clock of one representative uncached app point."""
    from repro.experiments.engine import RunSpec

    spec = RunSpec(
        app_factory="repro.apps.video:UhdVideoApp",
        app_kwargs={},
        emulator="vSoC",
        duration_ms=duration_ms,
    )
    t0 = time.perf_counter()
    run = execute_spec(spec)
    wall = time.perf_counter() - t0
    return {
        "app": run.result.app,
        "emulator": "vSoC",
        "duration_ms": duration_ms,
        "wall_s": round(wall, 4),
        "fps": round(run.result.fps, 2),
    }


def bench_suite(jobs: int, duration_ms: float = 4_000.0, per_category: int = 1,
                emulators=("vSoC", "GAE", "QEMU-KVM"),
                warm: bool = True) -> Dict[str, Any]:
    """Cold-serial vs cold-parallel vs warm-rerun over one sweep."""
    specs = _suite_specs(duration_ms, per_category, emulators)
    tmp = tempfile.mkdtemp(prefix="repro-bench-cache-")
    try:
        serial_cache = RunCache(os.path.join(tmp, "serial"))
        parallel_cache = RunCache(os.path.join(tmp, "parallel"))

        serial = run_many(specs, jobs=1, cache=serial_cache)
        parallel = run_many(specs, jobs=jobs, cache=parallel_cache)
        identical = serial.results == parallel.results

        suite: Dict[str, Any] = {
            "specs": len(specs),
            # "jobs" is what the sweep *got*; requested vs effective make an
            # oversubscribed host visible (a 1-CPU runner asked for --jobs 4
            # used to report a meaningless 0.3x "speedup").
            "jobs": parallel.effective_jobs,
            "jobs_requested": jobs,
            "jobs_effective": parallel.effective_jobs,
            "serial_s": round(serial.wall_s, 4),
            "parallel_s": round(parallel.wall_s, 4),
            "parallel_speedup": round(serial.wall_s / parallel.wall_s, 3)
            if parallel.wall_s > 0 else None,
            "parallel_identical": identical,
            "warm_s": None,
            "warm_cache_hit_rate": None,
        }
        if warm:
            rerun = run_many(specs, jobs=jobs, cache=parallel_cache)
            suite["warm_s"] = round(rerun.wall_s, 4)
            suite["warm_cache_hit_rate"] = round(rerun.hit_rate, 4)
            suite["warm_identical"] = rerun.results == serial.results
        return suite
    finally:
        shutil.rmtree(tmp, ignore_errors=True)


def run_bench(jobs: Optional[int] = None, quick: bool = False,
              warm: bool = True) -> Dict[str, Any]:
    """All three benchmarks → the BENCH_engine.json payload."""
    if jobs is None:
        jobs = default_jobs()
    duration = 2_000.0 if quick else 4_000.0
    report = {
        "schema": BENCH_SCHEMA,
        "host": {
            "cpu_count": os.cpu_count(),
            "available_cpus": default_jobs(),
            "python": platform.python_version(),
            "platform": sys.platform,
        },
        # The kernel stress keeps its full duration even under --quick:
        # sub-second workloads are dominated by noise and report junk ratios.
        "kernel": bench_kernel(),
        "single_run": bench_single_run(duration_ms=4_000.0 if quick else 8_000.0),
        "suites": {
            "emerging": bench_suite(jobs=jobs, duration_ms=duration, warm=warm),
        },
    }
    return report


def validate_bench_schema(data: Any) -> List[str]:
    """Schema check for a bench report; returns the list of problems."""
    problems: List[str] = []

    def need(mapping, key, types, where):
        if not isinstance(mapping, dict) or key not in mapping:
            problems.append(f"{where}: missing {key!r}")
            return None
        value = mapping[key]
        if not isinstance(value, types):
            problems.append(f"{where}.{key}: expected {types}, got {type(value).__name__}")
            return None
        return value

    if need(data, "schema", str, "root") != BENCH_SCHEMA:
        problems.append(f"root.schema: expected {BENCH_SCHEMA!r}")
    host = need(data, "host", dict, "root")
    if host is not None:
        need(host, "cpu_count", int, "host")
        need(host, "python", str, "host")
    kernel = need(data, "kernel", dict, "root")
    if kernel is not None:
        for key in ("baseline_s", "optimized_s", "speedup"):
            value = need(kernel, key, (int, float), "kernel")
            if value is not None and value <= 0:
                problems.append(f"kernel.{key}: must be positive, got {value}")
    single = need(data, "single_run", dict, "root")
    if single is not None:
        need(single, "wall_s", (int, float), "single_run")
    suites = need(data, "suites", dict, "root")
    if isinstance(suites, dict):
        if not suites:
            problems.append("suites: must contain at least one suite")
        for name, suite in suites.items():
            where = f"suites.{name}"
            need(suite, "specs", int, where)
            need(suite, "jobs", int, where)
            requested = need(suite, "jobs_requested", int, where)
            effective = need(suite, "jobs_effective", int, where)
            if isinstance(requested, int) and isinstance(effective, int):
                if effective < 1:
                    problems.append(f"{where}.jobs_effective: must be >= 1")
                if effective > max(requested, 1):
                    problems.append(f"{where}.jobs_effective: {effective} "
                                    f"exceeds requested {requested}")
            need(suite, "serial_s", (int, float), where)
            need(suite, "parallel_s", (int, float), where)
            identical = need(suite, "parallel_identical", bool, where)
            if identical is False:
                problems.append(f"{where}.parallel_identical: parallel results "
                                "diverged from serial")
            rate = suite.get("warm_cache_hit_rate") if isinstance(suite, dict) else None
            if rate is not None and not (
                isinstance(rate, (int, float)) and 0.0 <= rate <= 1.0
            ):
                problems.append(f"{where}.warm_cache_hit_rate: not in [0, 1]")
    return problems


def cmd_bench(jobs: Optional[int] = None, out_path: str = "BENCH_engine.json",
              quick: bool = False, cache: bool = True,
              check: bool = False, history_path: Optional[str] = None,
              tolerance: Optional[float] = None) -> int:
    """CLI entry point: run the benchmarks, print and write the report.

    With ``check``, the report is judged against the EWMA baselines of the
    recorded history *before* being appended to it; a regression verdict
    turns into a nonzero exit code (the CI gate). Without ``check`` the run
    is still appended, so the history grows either way.
    """
    from repro.obs.baseline import (
        DEFAULT_HISTORY_PATH,
        DEFAULT_TOLERANCE,
        RegressionSentinel,
    )

    report = run_bench(jobs=jobs, quick=quick, warm=cache)
    problems = validate_bench_schema(report)
    kernel = report["kernel"]
    suite = report["suites"]["emerging"]
    print(f"Kernel: baseline {kernel['baseline_s']:.3f}s -> optimized "
          f"{kernel['optimized_s']:.3f}s ({kernel['speedup']:.2f}x, "
          f"{kernel['events']} events)")
    print(f"Single run: {report['single_run']['wall_s']:.3f}s "
          f"({report['single_run']['app']} on vSoC, "
          f"{report['single_run']['duration_ms']:.0f} sim-ms)")
    print(f"Suite ({suite['specs']} specs): serial {suite['serial_s']:.2f}s, "
          f"parallel x{suite['jobs_effective']} "
          f"(requested {suite['jobs_requested']}) {suite['parallel_s']:.2f}s "
          f"(speedup {suite['parallel_speedup']}), "
          f"identical={suite['parallel_identical']}")
    if suite["warm_cache_hit_rate"] is not None:
        print(f"Warm rerun: {suite['warm_s']:.3f}s, "
              f"cache hit rate {100 * suite['warm_cache_hit_rate']:.0f}%")
    with open(out_path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"Wrote {out_path}")

    sentinel = RegressionSentinel(
        path=history_path or DEFAULT_HISTORY_PATH,
        tolerance=tolerance if tolerance is not None else DEFAULT_TOLERANCE,
    )
    verdict = sentinel.check(report)
    sentinel.append(report, note="quick" if quick else None)
    print(f"Sentinel ({verdict.history_len} prior runs, "
          f"tolerance ±{100 * sentinel.tolerance:.0f}%):")
    for v in verdict.verdicts:
        print(f"  {v.describe()}")
    if not verdict.ok:
        print(f"REGRESSION: {len(verdict.regressions)} metric(s) beyond "
              "tolerance" + ("" if check else " (advisory; rerun with --check "
                             "to gate on this)"))

    if problems:
        for problem in problems:
            print(f"SCHEMA PROBLEM: {problem}")
        return 1
    if check and not verdict.ok:
        return 2
    return 0
