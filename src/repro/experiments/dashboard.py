"""``dashboard``: fleet sweep → deterministic aggregate → one HTML file.

The command runs the standard telemetry grid — every emulator × two
representative apps (UHD video and AR, the paper's most demanding
categories) — through the parallel engine with per-run telemetry capture
on, folds the snapshots with :class:`repro.obs.fleet.FleetAggregator`, and
renders :mod:`repro.obs.dashboard`'s single-file report::

    python -m repro.experiments dashboard --out report.html \
        [--snapshot fleet.json] [--history BENCH_history.jsonl] \
        [--quick] [--jobs N]

Because snapshots ride the run cache, a warm rerun regenerates the exact
same dashboard without simulating anything; because the aggregator is
order-independent, ``--jobs 4`` and serial runs render byte-identical
aggregates.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.experiments.engine import EngineReport, RunSpec, run_many

#: The telemetry grid: every emulator × the two heaviest app categories.
FLEET_EMULATORS = ("vSoC", "GAE", "QEMU-KVM")
FLEET_APPS = (
    ("video", "repro.apps.video:UhdVideoApp"),
    ("ar", "repro.apps.ar:ArApp"),
)

DEFAULT_DURATION_MS = 6_000.0
QUICK_DURATION_MS = 2_000.0


def fleet_specs(duration_ms: float = DEFAULT_DURATION_MS,
                seed: int = 0) -> List[RunSpec]:
    """The dashboard's run grid, telemetry + latency attribution on.

    Attribution mirrors per-(category × device) budget totals into
    ``budget.ms`` counters on each snapshot, which the aggregator rolls
    up like any other counter — the dashboard's per-session budget bars
    come for free from the ordinary fleet pipeline.
    """
    return [
        RunSpec(
            app_factory=factory,
            app_kwargs={},
            emulator=emulator,
            duration_ms=duration_ms,
            seed=seed,
            telemetry=True,
            attribution=True,
        )
        for emulator in FLEET_EMULATORS
        for _label, factory in FLEET_APPS
    ]


def run_fleet(duration_ms: float = DEFAULT_DURATION_MS,
              jobs: Optional[int] = None, cache=True,
              seed: int = 0) -> EngineReport:
    """Run the telemetry grid through the engine."""
    return run_many(fleet_specs(duration_ms, seed), jobs=jobs, cache=cache)


def cmd_dashboard(
    out_path: str = "report.html",
    snapshot_path: Optional[str] = None,
    history_path: Optional[str] = None,
    quick: bool = False,
    jobs: Optional[int] = None,
    cache=True,
    seed: int = 0,
) -> int:
    """CLI body: sweep, aggregate, validate, render, write."""
    from repro.obs.baseline import DEFAULT_HISTORY_PATH, RegressionSentinel
    from repro.obs.dashboard import render_dashboard, write_dashboard
    from repro.obs.fleet import aggregate_results, validate_fleet_snapshot

    duration = QUICK_DURATION_MS if quick else DEFAULT_DURATION_MS
    report = run_fleet(duration_ms=duration, jobs=jobs, cache=cache, seed=seed)
    observed = sum(1 for r in report.results if r.telemetry is not None)
    print(f"Fleet sweep: {len(report.results)} runs "
          f"({report.cache_hits} cached, {report.executed} executed, "
          f"jobs {report.jobs} requested / {report.effective_jobs} effective, "
          f"{report.wall_s:.2f}s wall), {observed} with telemetry")

    aggregate: Dict[str, Any] = aggregate_results(report.results)
    problems = validate_fleet_snapshot(aggregate)
    for problem in problems:
        print(f"SNAPSHOT PROBLEM: {problem}")

    sentinel = RegressionSentinel(path=history_path or DEFAULT_HISTORY_PATH)
    history = sentinel.load()
    sentinel_dict = None
    if history:
        # Display-only: judge the newest record against the full history's
        # baselines (which include it — a pure trend readout, not a gate).
        sentinel_dict = sentinel.check(history[-1]["metrics"]).to_dict()

    html_text = render_dashboard(aggregate, history=history,
                                 sentinel=sentinel_dict)
    write_dashboard(out_path, html_text)
    size = len(html_text.encode("utf-8"))
    print(f"Wrote {out_path} ({size / 1024:.0f} KiB, single file, "
          f"{len(history)} history records)")

    if snapshot_path:
        with open(snapshot_path, "w", encoding="utf-8") as fh:
            json.dump(aggregate, fh, sort_keys=True, separators=(",", ":"))
            fh.write("\n")
        print(f"Wrote {snapshot_path} (canonical fleet aggregate)")
    return 1 if problems else 0
