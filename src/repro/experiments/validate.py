"""One-shot validation of the paper's headline claims.

Runs a quick version of every experiment and checks the *shape* contracts
this reproduction promises (DESIGN.md §4): orderings, rough factors,
crossovers. Intended as the artifact-evaluation entry point:

    python -m repro.experiments validate

Each claim prints PASS/FAIL with the measured values; the function returns
the list of failures (empty = fully validated).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.units import MIB


@dataclass
class Claim:
    """One validated statement about the reproduction."""

    name: str
    passed: bool
    detail: str


def _claim(claims: List[Claim], name: str, passed: bool, detail: str) -> None:
    claims.append(Claim(name=name, passed=passed, detail=detail))


def validate(duration_ms: float = 8_000.0, apps_per_category: int = 2,
             verbose: bool = True, jobs: Optional[int] = None,
             cache: bool = True) -> List[Claim]:
    """Run the validation suite; returns all claims (check ``passed``).

    ``jobs``/``cache`` thread straight into the experiment engine: the app
    sweeps fan out across cores and rerunning validation after an
    unmodified checkout is almost entirely cache hits.
    """
    claims: List[Claim] = []

    # --- Table 2 -----------------------------------------------------------
    from repro.experiments.microbench import run_svm_microbench
    from repro.hw.machine import HIGH_END_DESKTOP

    micro = {
        name: run_svm_microbench(name, HIGH_END_DESKTOP, duration_ms)
        for name in ("vSoC", "GAE", "QEMU-KVM")
    }
    _claim(
        claims, "T2: coherence ordering vSoC < QEMU-KVM < GAE",
        micro["vSoC"].coherence_cost_ms < micro["QEMU-KVM"].coherence_cost_ms
        < micro["GAE"].coherence_cost_ms,
        f"{micro['vSoC'].coherence_cost_ms:.2f} < "
        f"{micro['QEMU-KVM'].coherence_cost_ms:.2f} < "
        f"{micro['GAE'].coherence_cost_ms:.2f} ms (paper: 2.38 < 6.15 < 7.05)",
    )
    _claim(
        claims, "T2: access latency ordering QEMU-KVM < vSoC < GAE",
        micro["QEMU-KVM"].access_latency_ms < micro["vSoC"].access_latency_ms
        < micro["GAE"].access_latency_ms,
        f"{micro['QEMU-KVM'].access_latency_ms:.2f} < "
        f"{micro['vSoC'].access_latency_ms:.2f} < "
        f"{micro['GAE'].access_latency_ms:.2f} ms (paper: 0.22 < 0.34 < 0.76)",
    )
    _claim(
        claims, "T2: throughput ordering vSoC > GAE > QEMU-KVM",
        micro["vSoC"].throughput_gbps > micro["GAE"].throughput_gbps
        > micro["QEMU-KVM"].throughput_gbps,
        f"{micro['vSoC'].throughput_gbps:.2f} > {micro['GAE'].throughput_gbps:.2f} > "
        f"{micro['QEMU-KVM'].throughput_gbps:.2f} GB/s (paper: 3.49 > 1.56 > 0.96)",
    )
    _claim(
        claims, "§5.2: prediction accuracy >= 99%",
        micro["vSoC"].prediction_accuracy >= 0.99,
        f"{100 * micro['vSoC'].prediction_accuracy:.1f}%",
    )
    _claim(
        claims, "§5.2: framework memory overhead <= 3.1 MiB",
        micro["vSoC"].framework_overhead_bytes <= 3.1 * MIB,
        f"{micro['vSoC'].framework_overhead_bytes / MIB:.3f} MiB",
    )
    _claim(
        claims, "§5.2: engine CPU overhead < 1%",
        micro["vSoC"].cpu_overhead_fraction < 0.01,
        f"{100 * micro['vSoC'].cpu_overhead_fraction:.3f}%",
    )

    # --- Figure 10 -----------------------------------------------------------
    from repro.experiments.appbench import run_fig10

    fig10 = run_fig10(duration_ms=duration_ms, apps_per_category=apps_per_category,
                      jobs=jobs, cache=cache)
    means = {name: r.mean_fps for name, r in fig10.items()}
    _claim(
        claims, "F10: emerging-app FPS ordering",
        means["vSoC"] > means["GAE"] > means["QEMU-KVM"]
        > means["LDPlayer"] > means["Bluestacks"] > means["Trinity"],
        " > ".join(f"{k}={v:.1f}" for k, v in means.items()),
    )
    _claim(
        claims, "F10: vSoC near full rate, >=1.5x best baseline",
        means["vSoC"] > 50.0 and means["vSoC"] > 1.5 * means["GAE"],
        f"vSoC={means['vSoC']:.1f}, GAE={means['GAE']:.1f} (paper: 57 vs ~31)",
    )
    latency = {
        name: r.mean_latency for name, r in fig10.items() if r.mean_latency
    }
    _claim(
        claims, "F13: vSoC motion-to-photon lowest, sub-100 ms",
        latency["vSoC"] < 100.0
        and all(latency["vSoC"] < v for k, v in latency.items() if k != "vSoC"),
        ", ".join(f"{k}={v:.0f}ms" for k, v in latency.items()),
    )

    # --- Figure 12 ablations -----------------------------------------------------
    from repro.experiments.breakdown import run_fig12, run_fig16

    fig12 = run_fig12(duration_ms=duration_ms, apps_per_category=apps_per_category,
                      jobs=jobs, cache=cache)
    no_prefetch = fig12.drop_percent("no-prefetch")
    no_fence = fig12.drop_percent("no-fence")
    video = fig12.category_fps["UHD Video"]
    video_drop = 100.0 * (1.0 - video["no-prefetch"] / video["vSoC"])
    _claim(
        claims, "F12: prefetch ablation -15..50% avg, video hit hardest",
        15.0 < no_prefetch < 50.0 and video_drop >= no_prefetch,
        f"avg -{no_prefetch:.0f}%, video -{video_drop:.0f}% (paper: -30%, video -66%)",
    )
    _claim(
        claims, "F12: fence ablation hurts, less than prefetch",
        0.0 < no_fence < no_prefetch,
        f"-{no_fence:.0f}% (paper: -11%)",
    )

    fig16 = run_fig16(duration_ms=duration_ms, prefetch=False, cache=cache)
    _claim(
        claims, "F16: write-invalidate blocks tens of ms",
        fig16.maximum > 10.0,
        f"max {fig16.maximum:.1f} ms (paper: up to 40.54 ms)",
    )

    # --- Figure 15 -----------------------------------------------------------
    from repro.experiments.popular import pairwise_improvement, run_fig15

    fig15 = run_fig15(duration_ms=duration_ms, jobs=jobs, cache=cache)
    gains = {
        name: pairwise_improvement(fig15, name)
        for name in fig15 if name != "vSoC"
    }
    _claim(
        claims, "F15: popular-app gains moderate (5-70% band)",
        all(5.0 < g < 70.0 for g in gains.values()),
        ", ".join(f"{k}+{v:.0f}%" for k, v in gains.items()) + " (paper: 12-49%)",
    )
    counts = {name: r.runnable for name, r in fig15.items()}
    _claim(
        claims, "§5.5: popular runnable counts 25/21/17/25/24/24",
        counts == {"vSoC": 25, "GAE": 21, "QEMU-KVM": 17,
                   "LDPlayer": 25, "Bluestacks": 24, "Trinity": 24},
        str(counts),
    )

    if verbose:
        for claim in claims:
            status = "PASS" if claim.passed else "FAIL"
            print(f"[{status}] {claim.name}")
            print(f"       {claim.detail}")
        failures = [c for c in claims if not c.passed]
        print(f"\n{len(claims) - len(failures)}/{len(claims)} claims validated.")
    return claims
