"""``observe``: run one app with full observability and export artifacts.

This is the front door of :mod:`repro.obs` — one command that runs a
single (app, emulator) pair with tracing, metrics, and self-profiling
enabled, then writes:

* a Chrome ``trace_event`` / Perfetto JSON trace (open it in
  https://ui.perfetto.dev or ``chrome://tracing``) where every frame's
  journey — guest driver stage, transport kick, SVM access, coherence or
  prefetch copy, fences, host execution, presentation — is one connected
  flow of arrows;
* a metrics JSON with the registry's counters/gauges/histograms (prefetch
  mispredict rate, slack-estimate error, per-link bus utilization, frame
  accounting) plus the kernel self-profile attributing simulated time per
  device and subsystem.

The run itself is the same deterministic simulation the experiment
commands use: observability only *reads* the clock, so FPS and every other
number matches a run with observability off, bit for bit.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, Optional

from repro.apps.ar import ArApp
from repro.apps.base import App
from repro.apps.camera import CameraApp
from repro.apps.livestream import LivestreamApp
from repro.apps.video import UhdVideoApp
from repro.emulators import EMULATOR_FACTORIES
from repro.hw.machine import HIGH_END_DESKTOP, build_machine
from repro.metrics.collectors import ResilienceStats
from repro.obs import (
    Observability,
    connected_flows,
    validate_chrome_trace,
    write_chrome_trace,
    write_metrics,
)
from repro.sim import Simulator
from repro.sim.tracing import TraceLog

#: Observable workloads, one representative app per Table 1 category.
APPS: Dict[str, Callable[[], App]] = {
    "video": UhdVideoApp,
    "camera": CameraApp,
    "ar": ArApp,
    "livestream": LivestreamApp,
}

DEFAULT_DURATION_MS = 8_000.0

#: The causal chain the exported trace must contain for at least one
#: frame (SVM access → coherence maintenance or prefetch → presentation).
#: Names match by equality or prefix, so "prefetch" covers
#: ``prefetch.copy`` as well as the suspend/launch instants.
FLOW_CHAINS = (
    ("svm.begin_access", "coherence.copy", "frame.presented"),
    ("svm.begin_access", "prefetch", "frame.presented"),
)


class ObserveResult:
    """Everything one observed run produced."""

    def __init__(self, result, trace_dict, metrics_dict, tracer, connected):
        self.result = result  # AppResult
        self.trace = trace_dict  # Chrome trace_event dict
        self.metrics = metrics_dict  # metrics + self-profile dict
        self.tracer = tracer
        self.connected = connected  # flow ids with a full causal chain


def run_observe(
    app: str = "ar",
    emulator: str = "vSoC",
    duration_ms: float = DEFAULT_DURATION_MS,
    seed: int = 0,
    machine_spec=HIGH_END_DESKTOP,
    include_tracelog: bool = False,
    reservoir: Optional[int] = None,
    max_spans: Optional[int] = None,
) -> ObserveResult:
    """Run one observed app; returns the trace + metrics dicts.

    ``include_tracelog`` digests the legacy :class:`TraceLog` records into
    the exported trace as instant events (one thread per record ``vdev``),
    so pre-observability instrumentation shows up alongside the spans.
    ``reservoir`` overrides the registry's per-instrument sample retention
    (gauge timelines and histogram reservoirs; default 512).
    ``max_spans`` puts the tracer in bounded ring mode: only the newest N
    spans/instants survive and :attr:`Tracer.dropped_spans` counts the
    evictions (surfaced in the CLI summary and export metadata).
    """
    if app not in APPS:
        raise ValueError(f"unknown app {app!r}; choose from {sorted(APPS)}")
    if emulator not in EMULATOR_FACTORIES:
        raise ValueError(
            f"unknown emulator {emulator!r}; choose from {sorted(EMULATOR_FACTORIES)}"
        )

    sim = Simulator()
    machine = build_machine(sim, machine_spec)
    tracelog = TraceLog()
    obs = Observability(sim, reservoir=reservoir, max_spans=max_spans)
    make = EMULATOR_FACTORIES[emulator]
    emu = make(sim, machine, trace=tracelog, rng=random.Random(seed), obs=obs)

    workload = APPS[app]()
    workload.fps.attach_registry(obs.registry)
    if not workload.install(sim, emu):
        raise SystemExit(
            f"{app!r} cannot run on {emulator!r}: "
            f"{getattr(workload, '_fail_reason', 'install failed')}"
        )
    sim.run(until=duration_ms)
    result = workload.collect(emulator, duration_ms)

    ResilienceStats(tracelog).to_registry(obs.registry)
    trace_dict = obs.export_trace(
        track_groups=emu.track_groups(),
        tracelog=tracelog if include_tracelog else None,
    )
    metrics_dict = obs.export_metrics(extra={
        "app": result.app,
        "category": result.category,
        "emulator": emulator,
        "duration_ms": duration_ms,
        "fps": result.fps,
        "presented": result.presented,
        "dropped": dict(result.dropped),
    })

    connected: set = set()
    for chain in FLOW_CHAINS:
        connected.update(connected_flows(obs.tracer, chain))
    return ObserveResult(result, trace_dict, metrics_dict, obs.tracer, sorted(connected))


def cmd_observe(
    app: str,
    emulator: str,
    duration_ms: float,
    export_path: Optional[str] = None,
    metrics_path: Optional[str] = None,
    seed: int = 0,
    include_tracelog: bool = False,
    reservoir: Optional[int] = None,
    max_spans: Optional[int] = None,
) -> int:
    """CLI body: run, validate, write artifacts, print a digest."""
    run = run_observe(
        app=app, emulator=emulator, duration_ms=duration_ms, seed=seed,
        include_tracelog=include_tracelog, reservoir=reservoir,
        max_spans=max_spans,
    )
    errors = validate_chrome_trace(run.trace)
    if errors:
        for error in errors:
            print(f"trace schema error: {error}")
        return 1

    tracer = run.tracer
    events = run.trace["traceEvents"]
    print(f"Observed {app!r} on {emulator!r} for {duration_ms:.0f} ms simulated:")
    print(f"  FPS: {run.result.fps:.1f} "
          f"(presented {run.result.presented}, dropped {sum(run.result.dropped.values())})")
    print(f"  spans: {len(tracer.spans)}  instants: {len(tracer.instants)}  "
          f"trace events: {len(events)}")
    if tracer.max_spans is not None:
        print(f"  span retention: ring (max_spans={tracer.max_spans})  "
              f"dropped spans: {tracer.dropped_spans}")
        if tracer.dropped_spans:
            print("  WARNING: the ring cap evicted spans — flows may be "
                  "truncated and latency attribution will refuse this trace")
    print(f"  frame flows: {len(tracer.flows())}  "
          f"fully connected (svm → coherence/prefetch → presented): {len(run.connected)}")

    profile = run.metrics.get("profile")
    if profile:
        device_ms = profile.get("device_ms", {})
        if device_ms:
            attribution = ", ".join(
                f"{dev}={ms:.0f}ms" for dev, ms in sorted(device_ms.items())
            )
            print(f"  simulated time per device: {attribution}")
    utilizations = [
        m for m in run.metrics["metrics"] if m["name"] == "bus.utilization"
    ]
    for metric in utilizations:
        link = metric["labels"].get("link", "?")
        print(f"  bus {link}: {100 * metric['value']:.1f}% utilized")
    mispredict = [
        m for m in run.metrics["metrics"] if m["name"] == "prefetch.mispredict_rate"
    ]
    if mispredict:
        print(f"  prefetch mispredict rate: {100 * mispredict[0]['value']:.1f}%")

    if export_path:
        write_chrome_trace(export_path, run.trace)
        print(f"  wrote trace: {export_path}")
    if metrics_path:
        write_metrics(metrics_path, run.metrics)
        print(f"  wrote metrics: {metrics_path}")
    return 0
