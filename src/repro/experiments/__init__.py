"""Experiment harness: one entry point per table/figure of the paper.

See DESIGN.md's per-experiment index. Each experiment module exposes
``run_*`` functions returning plain result structures; the
``__main__`` CLI prints the paper-shaped reports, and
:mod:`repro.experiments.export` serializes any result to JSON.
"""

from repro.experiments.appbench import run_appbench, run_fig10, run_fig11
from repro.experiments.engine import (
    EngineReport,
    PointSpec,
    RunCache,
    RunResult,
    RunSpec,
    StatsSummary,
    cache_key,
    run_many,
    run_one,
    source_fingerprint,
    specs_for_apps,
)
from repro.experiments.breakdown import (
    run_fig12,
    run_fig16,
    run_popular_breakdown,
)
from repro.experiments.density import run_density, run_density_comparison
from repro.experiments.measurement import run_fig4, run_fig5, run_fig6, run_measurement
from repro.experiments.microbench import run_svm_microbench, run_table2
from repro.experiments.popular import run_fig15
from repro.experiments.runner import (
    AppRun,
    mean_fps,
    mean_latency,
    run_app,
    run_category,
    run_emulator_suite,
)
from repro.experiments.sweeps import (
    boundary_crossover,
    sweep_boundary_bandwidth,
    sweep_pcie_bandwidth,
)
from repro.experiments.validate import validate

__all__ = [
    "AppRun",
    "EngineReport",
    "PointSpec",
    "RunCache",
    "RunResult",
    "RunSpec",
    "StatsSummary",
    "cache_key",
    "run_many",
    "run_one",
    "source_fingerprint",
    "specs_for_apps",
    "run_app",
    "run_category",
    "run_emulator_suite",
    "mean_fps",
    "mean_latency",
    "run_table2",
    "run_svm_microbench",
    "run_measurement",
    "run_fig4",
    "run_fig5",
    "run_fig6",
    "run_appbench",
    "run_fig10",
    "run_fig11",
    "run_fig12",
    "run_fig15",
    "run_fig16",
    "run_popular_breakdown",
    "run_density",
    "run_density_comparison",
    "sweep_boundary_bandwidth",
    "sweep_pcie_bandwidth",
    "boundary_crossover",
    "validate",
]
