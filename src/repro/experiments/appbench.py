"""Application benchmarks: Figures 10, 11, 13 and 14 (§5.3).

Runs the 50 emerging apps on every emulator, on either evaluation machine,
and aggregates FPS per category (Figs 10/11) and motion-to-photon latency
for the camera/AR/livestream categories (Figs 13/14). Also provides the
pairwise comparison of §5.3 (averages over the apps *both* emulators can
run) and the runnable-app counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.apps.catalog import EMERGING_CATEGORIES, emerging_apps
from repro.experiments.runner import DEFAULT_DURATION_MS, AppRun, run_app
from repro.hw.machine import HIGH_END_DESKTOP, MachineSpec

EMULATORS = ("vSoC", "GAE", "QEMU-KVM", "LDPlayer", "Bluestacks", "Trinity")
#: Categories with motion-to-photon measurements (§5.3: no user input
#: during video playback, so latency is only measured on these three).
LATENCY_CATEGORIES = ("Camera", "AR", "Livestream")


@dataclass
class AppBenchResult:
    """One emulator's bar group in Figs 10/11 + 13/14."""

    emulator: str
    machine: str
    category_fps: Dict[str, float] = field(default_factory=dict)
    category_latency: Dict[str, float] = field(default_factory=dict)
    runnable: int = 0
    per_app: Dict[str, Optional[float]] = field(default_factory=dict)  # fps or None

    @property
    def mean_fps(self) -> float:
        values = list(self.category_fps.values())
        return sum(values) / len(values) if values else 0.0

    @property
    def mean_latency(self) -> Optional[float]:
        values = list(self.category_latency.values())
        return sum(values) / len(values) if values else None


def run_appbench(
    emulator_name: str,
    machine_spec: MachineSpec = HIGH_END_DESKTOP,
    duration_ms: float = DEFAULT_DURATION_MS,
    apps_per_category: int = 10,
    seed: int = 0,
) -> AppBenchResult:
    """All emerging apps on one emulator/machine."""
    result = AppBenchResult(emulator=emulator_name, machine=machine_spec.name)
    by_category: Dict[str, List[AppRun]] = {c: [] for c in EMERGING_CATEGORIES}
    for app in emerging_apps(seed=seed, per_category=apps_per_category):
        run = run_app(app, emulator_name, machine_spec, duration_ms, seed=seed)
        by_category[app.category].append(run)
        result.per_app[app.name] = run.result.fps if run.result.ran else None
        if run.result.ran:
            result.runnable += 1
    for category, runs in by_category.items():
        fps_values = [r.result.fps for r in runs if r.result.ran]
        if fps_values:
            result.category_fps[category] = sum(fps_values) / len(fps_values)
        if category in LATENCY_CATEGORIES:
            lat_values = [
                r.result.latency_avg for r in runs
                if r.result.ran and r.result.latency_avg is not None
            ]
            if lat_values:
                result.category_latency[category] = sum(lat_values) / len(lat_values)
    return result


def run_fig10(machine_spec: MachineSpec = HIGH_END_DESKTOP,
              duration_ms: float = DEFAULT_DURATION_MS,
              apps_per_category: int = 10,
              emulators: Sequence[str] = EMULATORS,
              seed: int = 0) -> Dict[str, AppBenchResult]:
    """FPS bars per category per emulator (Fig 10 high-end / Fig 11 laptop)."""
    return {
        name: run_appbench(name, machine_spec, duration_ms, apps_per_category, seed)
        for name in emulators
    }


def run_fig11(duration_ms: float = DEFAULT_DURATION_MS, apps_per_category: int = 10,
              emulators: Sequence[str] = EMULATORS, seed: int = 0):
    """Fig 11 = Fig 10 on the middle-end laptop (thermal effects active).

    Note: the laptop's thermal collapse develops over ~30-60 simulated
    seconds, so short durations understate it; 60 s+ is representative.
    """
    from repro.hw.machine import MIDDLE_END_LAPTOP

    return run_fig10(MIDDLE_END_LAPTOP, duration_ms, apps_per_category, emulators, seed)


def pairwise_comparison(results: Dict[str, AppBenchResult], baseline: str,
                        reference: str = "vSoC") -> Optional[float]:
    """§5.3's pairwise FPS ratio over apps both emulators can run.

    Returns reference/baseline mean-FPS ratio, or None with no overlap.
    """
    ref, base = results[reference], results[baseline]
    common = [
        name
        for name, fps in ref.per_app.items()
        if fps is not None and base.per_app.get(name) is not None
    ]
    if not common:
        return None
    ref_mean = sum(ref.per_app[n] for n in common) / len(common)
    base_mean = sum(base.per_app[n] for n in common) / len(common)
    if base_mean <= 0:
        return None
    return ref_mean / base_mean


def runnable_counts(results: Dict[str, AppBenchResult]) -> Dict[str, int]:
    """§5.3's 48/47/42/43/44/20-style counts."""
    return {name: r.runnable for name, r in results.items()}
