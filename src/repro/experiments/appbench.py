"""Application benchmarks: Figures 10, 11, 13 and 14 (§5.3).

Runs the 50 emerging apps on every emulator, on either evaluation machine,
and aggregates FPS per category (Figs 10/11) and motion-to-photon latency
for the camera/AR/livestream categories (Figs 13/14). Also provides the
pairwise comparison of §5.3 (averages over the apps *both* emulators can
run) and the runnable-app counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.apps.catalog import EMERGING_CATEGORIES, emerging_app_params
from repro.experiments.engine import RunResult, run_many, specs_for_apps
from repro.experiments.runner import DEFAULT_DURATION_MS
from repro.hw.machine import HIGH_END_DESKTOP, MachineSpec

EMULATORS = ("vSoC", "GAE", "QEMU-KVM", "LDPlayer", "Bluestacks", "Trinity")
#: Categories with motion-to-photon measurements (§5.3: no user input
#: during video playback, so latency is only measured on these three).
LATENCY_CATEGORIES = ("Camera", "AR", "Livestream")


@dataclass
class AppBenchResult:
    """One emulator's bar group in Figs 10/11 + 13/14."""

    emulator: str
    machine: str
    category_fps: Dict[str, float] = field(default_factory=dict)
    category_latency: Dict[str, float] = field(default_factory=dict)
    runnable: int = 0
    per_app: Dict[str, Optional[float]] = field(default_factory=dict)  # fps or None

    @property
    def mean_fps(self) -> float:
        values = list(self.category_fps.values())
        return sum(values) / len(values) if values else 0.0

    @property
    def mean_latency(self) -> Optional[float]:
        values = list(self.category_latency.values())
        return sum(values) / len(values) if values else None


def _collect_appbench(
    emulator_name: str,
    machine_spec: MachineSpec,
    results: Sequence[RunResult],
) -> AppBenchResult:
    """Aggregate one emulator's engine results into its Figs 10/11 bars."""
    bench = AppBenchResult(emulator=emulator_name, machine=machine_spec.name)
    by_category: Dict[str, List[RunResult]] = {c: [] for c in EMERGING_CATEGORIES}
    for run in results:
        by_category[run.result.category].append(run)
        bench.per_app[run.result.app] = run.result.fps if run.result.ran else None
        if run.result.ran:
            bench.runnable += 1
    for category, runs in by_category.items():
        fps_values = [r.result.fps for r in runs if r.result.ran]
        if fps_values:
            bench.category_fps[category] = sum(fps_values) / len(fps_values)
        if category in LATENCY_CATEGORIES:
            lat_values = [
                r.result.latency_avg for r in runs
                if r.result.ran and r.result.latency_avg is not None
            ]
            if lat_values:
                bench.category_latency[category] = sum(lat_values) / len(lat_values)
    return bench


def run_appbench(
    emulator_name: str,
    machine_spec: MachineSpec = HIGH_END_DESKTOP,
    duration_ms: float = DEFAULT_DURATION_MS,
    apps_per_category: int = 10,
    seed: int = 0,
    jobs: Optional[int] = None,
    cache: bool = True,
) -> AppBenchResult:
    """All emerging apps on one emulator/machine (engine-backed)."""
    specs = specs_for_apps(
        emerging_app_params(seed=seed, per_category=apps_per_category),
        emulator_name, machine_spec, duration_ms, seed=seed,
    )
    report = run_many(specs, jobs=jobs, cache=cache)
    return _collect_appbench(emulator_name, machine_spec, report.results)


def run_fig10(machine_spec: MachineSpec = HIGH_END_DESKTOP,
              duration_ms: float = DEFAULT_DURATION_MS,
              apps_per_category: int = 10,
              emulators: Sequence[str] = EMULATORS,
              seed: int = 0,
              jobs: Optional[int] = None,
              cache: bool = True) -> Dict[str, AppBenchResult]:
    """FPS bars per category per emulator (Fig 10 high-end / Fig 11 laptop).

    The whole (emulator × app) grid is one engine submission, so ``jobs``
    parallelism spans emulators, not just one emulator's apps.
    """
    params = emerging_app_params(seed=seed, per_category=apps_per_category)
    specs = []
    for name in emulators:
        specs.extend(
            specs_for_apps(params, name, machine_spec, duration_ms, seed=seed)
        )
    report = run_many(specs, jobs=jobs, cache=cache)
    results: Dict[str, AppBenchResult] = {}
    for slot, name in enumerate(emulators):
        chunk = report.results[slot * len(params):(slot + 1) * len(params)]
        results[name] = _collect_appbench(name, machine_spec, chunk)
    return results


def run_fig11(duration_ms: float = DEFAULT_DURATION_MS, apps_per_category: int = 10,
              emulators: Sequence[str] = EMULATORS, seed: int = 0,
              jobs: Optional[int] = None, cache: bool = True):
    """Fig 11 = Fig 10 on the middle-end laptop (thermal effects active).

    Note: the laptop's thermal collapse develops over ~30-60 simulated
    seconds, so short durations understate it; 60 s+ is representative.
    """
    from repro.hw.machine import MIDDLE_END_LAPTOP

    return run_fig10(MIDDLE_END_LAPTOP, duration_ms, apps_per_category, emulators,
                     seed, jobs=jobs, cache=cache)


def pairwise_comparison(results: Dict[str, AppBenchResult], baseline: str,
                        reference: str = "vSoC") -> Optional[float]:
    """§5.3's pairwise FPS ratio over apps both emulators can run.

    Returns reference/baseline mean-FPS ratio, or None with no overlap.
    """
    ref, base = results[reference], results[baseline]
    common = [
        name
        for name, fps in ref.per_app.items()
        if fps is not None and base.per_app.get(name) is not None
    ]
    if not common:
        return None
    ref_mean = sum(ref.per_app[n] for n in common) / len(common)
    base_mean = sum(base.per_app[n] for n in common) / len(common)
    if base_mean <= 0:
        return None
    return ref_mean / base_mean


def runnable_counts(results: Dict[str, AppBenchResult]) -> Dict[str, int]:
    """§5.3's 48/47/42/43/44/20-style counts."""
    return {name: r.runnable for name, r in results.items()}
