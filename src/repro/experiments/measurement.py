"""The §2.3 measurement study: Figures 4, 5 and 6.

* **Fig 4** — CDF of shared-memory region sizes across the 50 emerging
  apps, per platform. The two spikes the paper calls out — 9.9 MiB
  display buffers and 15.8 MiB UHD frames — come straight out of the
  workloads' allocations.
* **Fig 5** — CDF of coherence maintenance durations on GAE and QEMU-KVM
  (paper averages: 7.1 ms and 6.2 ms).
* **Fig 6** — CDF of slack intervals on the three platforms (avg 17.2 ms;
  buffered pipelines >30 ms, unbuffered <20 ms).

The physical Pixel 6a is simulated by the ``device-proxy`` platform: a
vSoC instance, whose unified architecture is the closest stand-in for an
SoC's unified memory (slack intervals are OS-level and hardware-
independent, which is the paper's own argument for why emulator and
device slacks coincide).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.apps.catalog import emerging_apps
from repro.experiments.runner import DEFAULT_DURATION_MS, run_app
from repro.hw.machine import HIGH_END_DESKTOP, MachineSpec
from repro.metrics.stats import cdf_points, mean

#: Platform label → emulator used to produce its traces.
MEASUREMENT_PLATFORMS = {
    "device-proxy": "vSoC",
    "GAE": "GAE",
    "QEMU-KVM": "QEMU-KVM",
}


#: Virtual devices attributed to each §2.3 system service.
SERVICE_VDEVS = {
    "media service": ("codec",),
    "SurfaceFlinger": ("gpu", "display"),
    "camera service": ("camera", "isp"),
    "apps (CPU)": ("cpu",),
    "other": ("modem",),
}


@dataclass
class MeasurementResult:
    """Raw per-platform samples for Figures 4-6 + the §2.3 observations."""

    platform: str
    region_sizes: List[int] = field(default_factory=list)
    coherence_durations: List[float] = field(default_factory=list)
    slack_intervals: List[float] = field(default_factory=list)
    api_calls_per_second: float = 0.0
    #: accesses per virtual device (→ per system service)
    accesses_by_vdev: Dict[str, int] = field(default_factory=dict)
    #: per-region distinct accessor counts (paper: 99% serve 1-2 processes)
    accessors_per_region: List[int] = field(default_factory=list)
    #: fraction of multi-process regions showing the cyclic W/R pattern
    cyclic_fraction: Optional[float] = None

    def access_share_by_service(self) -> Dict[str, float]:
        """§2.3: media 28%, SurfaceFlinger 23%, camera service 19%, ..."""
        total = sum(self.accesses_by_vdev.values())
        if not total:
            return {}
        shares: Dict[str, float] = {}
        for service, vdevs in SERVICE_VDEVS.items():
            count = sum(self.accesses_by_vdev.get(v, 0) for v in vdevs)
            if count:
                shares[service] = count / total
        return shares

    def few_accessor_fraction(self) -> Optional[float]:
        """Fraction of regions serving at most two accessors (paper: 99%)."""
        if not self.accessors_per_region:
            return None
        few = sum(1 for n in self.accessors_per_region if n <= 2)
        return few / len(self.accessors_per_region)

    def size_cdf(self):
        return cdf_points([float(s) for s in self.region_sizes])

    def coherence_cdf(self):
        return cdf_points(self.coherence_durations)

    def slack_cdf(self):
        return cdf_points(self.slack_intervals)

    @property
    def mean_coherence(self) -> Optional[float]:
        return mean(self.coherence_durations) if self.coherence_durations else None

    @property
    def mean_slack(self) -> Optional[float]:
        return mean(self.slack_intervals) if self.slack_intervals else None


def run_measurement(
    platform: str,
    machine_spec: MachineSpec = HIGH_END_DESKTOP,
    duration_ms: float = DEFAULT_DURATION_MS,
    apps_per_category: int = 10,
    seed: int = 0,
) -> MeasurementResult:
    """Instrument the emerging apps on one platform (§2.3 methodology)."""
    emulator_name = MEASUREMENT_PLATFORMS[platform]
    result = MeasurementResult(platform=platform)
    total_calls = 0
    ran = 0
    cyclic_regions = 0
    pipeline_regions = 0
    for app in emerging_apps(seed=seed, per_category=apps_per_category):
        run = run_app(app, emulator_name, machine_spec, duration_ms, seed=seed)
        if not run.result.ran or run.stats is None:
            continue
        ran += 1
        trace = run.stats.trace
        result.region_sizes.extend(int(r["size"]) for r in trace.of_kind("svm.alloc"))
        result.coherence_durations.extend(run.stats.coherence_durations())
        result.slack_intervals.extend(run.stats.slack_intervals())
        total_calls += len(trace.of_kind("svm.access_latency")) + len(
            trace.of_kind("svm.access_end")
        )
        # -- the §2.3 observations -----------------------------------------
        per_region_accessors: Dict[int, set] = {}
        per_region_usage: Dict[int, List[str]] = {}
        for record in trace.of_kind("svm.access_latency"):
            vdev = record["vdev"]
            result.accesses_by_vdev[vdev] = result.accesses_by_vdev.get(vdev, 0) + 1
            rid = record["region"]
            per_region_accessors.setdefault(rid, set()).add(vdev)
            per_region_usage.setdefault(rid, []).append(record["usage"])
        result.accessors_per_region.extend(
            len(v) for v in per_region_accessors.values()
        )
        for rid, usages in per_region_usage.items():
            if len(per_region_accessors[rid]) < 2 or len(usages) < 4:
                continue
            pipeline_regions += 1
            if _is_cyclic(usages):
                cyclic_regions += 1
    if ran:
        result.api_calls_per_second = total_calls / ran / (duration_ms / 1000.0)
    if pipeline_regions:
        result.cyclic_fraction = cyclic_regions / pipeline_regions
    return result


def _is_cyclic(usages: List[str]) -> bool:
    """The §2.3 pattern: write, read(s), write, read(s), ... in strict
    alternation of direction (a one-way data pipeline)."""
    transitions = 0
    violations = 0
    previous = None
    for usage in usages:
        writes = usage in ("wo", "rw")
        if previous is None:
            previous = writes
            continue
        if writes == previous and writes:
            violations += 1  # two writes with no read between them
        if writes != previous:
            transitions += 1
        previous = writes
    if transitions == 0:
        return False
    return violations <= 0.04 * len(usages)  # 96%-regular, like the paper


def run_fig4(duration_ms: float = DEFAULT_DURATION_MS, apps_per_category: int = 10,
             seed: int = 0) -> Dict[str, MeasurementResult]:
    """Region-size CDFs on all three platforms."""
    return {
        platform: run_measurement(platform, duration_ms=duration_ms,
                                  apps_per_category=apps_per_category, seed=seed)
        for platform in MEASUREMENT_PLATFORMS
    }


def run_fig5(duration_ms: float = DEFAULT_DURATION_MS, apps_per_category: int = 10,
             seed: int = 0) -> Dict[str, MeasurementResult]:
    """Coherence-duration CDFs on the two instrumentable emulators."""
    return {
        platform: run_measurement(platform, duration_ms=duration_ms,
                                  apps_per_category=apps_per_category, seed=seed)
        for platform in ("GAE", "QEMU-KVM")
    }


def run_fig6(duration_ms: float = DEFAULT_DURATION_MS, apps_per_category: int = 10,
             seed: int = 0) -> Dict[str, MeasurementResult]:
    """Slack-interval CDFs on the three platforms."""
    return run_fig4(duration_ms, apps_per_category, seed)


def prevalent_sizes(result: MeasurementResult, top: int = 2) -> List[int]:
    """The most frequent allocation sizes (Fig 4's 9.9 / 15.8 MiB spikes)."""
    counts: Dict[int, int] = {}
    for size in result.region_sizes:
        counts[size] = counts.get(size, 0) + 1
    return [size for size, _n in sorted(counts.items(), key=lambda kv: -kv[1])[:top]]
