"""Chaos scenarios: app runs under injected faults.

:func:`run_chaos` runs one app on one emulator while a seeded
:class:`~repro.faults.FaultInjector` executes a :class:`~repro.faults.FaultPlan`
against its buses, devices, and transport. The result splits FPS into the
whole-run average and the *steady state* after the last fault clears —
the number the acceptance bar ("within 2× of fault-free after clearance")
is measured on.

The default scenario is the acceptance scenario from the fault-model spec:
a flapping PCIe link, a window of transient DMA failures dense enough to
drive the coherence ladder down, one GPU stall, and a burst of dropped
virtio kicks.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.apps.base import App
from repro.apps.video import UhdVideoApp
from repro.emulators import EMULATOR_FACTORIES
from repro.emulators.base import Emulator
from repro.faults import FaultInjector, FaultPlan
from repro.hw.machine import HIGH_END_DESKTOP, MachineSpec, build_machine
from repro.metrics.collectors import ResilienceStats
from repro.sim import Simulator
from repro.sim.tracing import TraceLog
from repro.units import SECOND

DEFAULT_CHAOS_DURATION_MS = 10_000.0

#: Grace period after the last plan event before the "steady state" window
#: starts — in-flight retries and the re-probe interval need a moment.
CLEARANCE_GRACE_MS = 1_000.0


def default_chaos_plan() -> FaultPlan:
    """Bus flap + transient DMA failures + one device stall + kick drops."""
    return (
        FaultPlan()
        .flap_bus("pcie", start_ms=1_500.0, period_ms=500.0, cycles=6, high_load=0.85)
        .copy_faults(2_000.0, 4_500.0, probability=0.7, bus="pcie")
        .stall_device(3_000.0, "gpu", duration_ms=120.0)
        .transport_faults(2_500.0, 4_000.0, drop_probability=0.25)
    )


def crash_chaos_plan() -> FaultPlan:
    """Two mid-frame device crashes: the codec early, the GPU later.

    The codec crash tears the decode→render coherence flow (its regions
    live in host memory); the GPU crash orphans render fences the display
    executor waits on — together they exercise every arm of the recovery
    state machine (abort, poison, quarantine, replay, re-admit).
    """
    return (
        FaultPlan()
        .crash_device(2_000.0, "codec", downtime_ms=400.0)
        .crash_device(5_000.0, "gpu", downtime_ms=300.0)
    )


def crash_with_faults_plan() -> FaultPlan:
    """Device crashes layered on the default bus/transport chaos."""
    return (
        default_chaos_plan()
        .crash_device(2_200.0, "codec", downtime_ms=400.0)
        .crash_device(6_000.0, "gpu", downtime_ms=300.0)
    )


@dataclass
class ChaosResult:
    """One chaos run, digested."""

    emulator: str
    seed: int
    duration_ms: float
    fps: float
    steady_fps: float
    steady_after_ms: float
    presented: int
    degrades: int
    restores: int
    time_degraded_ms: float
    injected: Dict[str, int] = field(default_factory=dict)
    retries: int = 0
    copy_failures: int = 0
    watchdog_expiries: int = 0
    prefetch_failures: int = 0
    transport_drops: int = 0
    degrade_events: List[Tuple[float, int]] = field(default_factory=list)
    restore_events: List[Tuple[float, int]] = field(default_factory=list)
    trace: Optional[TraceLog] = None
    # device-crash recovery accounting (zeros for plans without crashes)
    crashes: int = 0
    recoveries: int = 0
    aborted_commands: int = 0
    poisoned_fences: int = 0
    quarantined_regions: int = 0
    replayed_copies: int = 0
    audit_violations: int = 0

    @property
    def entered_degraded(self) -> bool:
        return self.degrades > 0

    @property
    def exited_degraded(self) -> bool:
        return self.restores > 0 and self.time_degraded_ms < self.duration_ms


def run_chaos(
    emulator_name: str = "vSoC",
    machine_spec: MachineSpec = HIGH_END_DESKTOP,
    duration_ms: float = DEFAULT_CHAOS_DURATION_MS,
    seed: int = 0,
    plan: Optional[FaultPlan] = None,
    app: Optional[App] = None,
    watchdog_margin: Optional[float] = 6.0,
    keep_trace: bool = False,
    audit: bool = False,
    strict_audit: bool = False,
) -> ChaosResult:
    """Run one app under one fault plan; fully deterministic per seed.

    ``plan=None`` uses :func:`default_chaos_plan`; pass an *empty*
    ``FaultPlan()`` for the fault-free baseline (same harness, no
    injection). ``watchdog_margin`` arms the copy planner's per-operation
    deadline at ``margin × estimate``; ``None`` leaves watchdogs off.
    ``audit=True`` installs the runtime invariant auditor (non-raising;
    violations are counted into the result); ``strict_audit=True``
    implies ``audit`` and raises
    :class:`~repro.errors.InvariantViolation` on the first violation.
    """
    plan = plan if plan is not None else default_chaos_plan()
    app = app if app is not None else UhdVideoApp()

    sim = Simulator()
    machine = build_machine(sim, machine_spec)
    trace = TraceLog()
    make = EMULATOR_FACTORIES[emulator_name]
    emulator: Emulator = make(sim, machine, trace=trace, rng=random.Random(seed))
    if watchdog_margin is not None:
        emulator.planner.watchdog_margin = watchdog_margin

    injector = FaultInjector(sim, plan, seed=seed, trace=trace)
    if not plan.is_empty():
        injector.install(emulator)

    auditor = None
    if audit or strict_audit:
        from repro.recovery.audit import install_auditor

        auditor = install_auditor(emulator, raise_on_violation=strict_audit)

    if not app.install(sim, emulator):
        raise RuntimeError(f"app {app.name!r} failed to install on {emulator_name}")
    sim.run(until=duration_ms)

    resilience = ResilienceStats(trace)
    steady_after = min(duration_ms, plan.last_fault_time() + CLEARANCE_GRACE_MS)
    steady_window = duration_ms - steady_after
    steady_frames = sum(1 for t in app.fps.present_times if t >= steady_after)
    steady_fps = steady_frames / (steady_window / SECOND) if steady_window > 0 else 0.0

    return ChaosResult(
        emulator=emulator_name,
        seed=seed,
        duration_ms=duration_ms,
        fps=app.fps.fps(duration_ms, warmup_ms=app.warmup_ms),
        steady_fps=steady_fps,
        steady_after_ms=steady_after,
        presented=app.fps.presented,
        degrades=resilience.degrades,
        restores=resilience.restores,
        time_degraded_ms=resilience.time_in_degraded_mode(duration_ms),
        injected=injector.stats.as_dict(),
        retries=resilience.retries,
        copy_failures=emulator.planner.copy_failures,
        watchdog_expiries=emulator.planner.watchdog_expiries,
        prefetch_failures=resilience.prefetch_failures,
        transport_drops=emulator.transport.kicks_dropped,
        degrade_events=resilience.degrade_events(),
        restore_events=resilience.restore_events(),
        trace=trace if keep_trace else None,
        crashes=resilience.crashes,
        recoveries=resilience.recoveries,
        aborted_commands=(
            injector.coordinator.stats.aborted_commands
            if injector.coordinator is not None
            else 0
        ),
        poisoned_fences=(
            injector.coordinator.stats.poisoned_fences
            if injector.coordinator is not None
            else 0
        ),
        quarantined_regions=(
            injector.coordinator.stats.quarantined_regions
            if injector.coordinator is not None
            else 0
        ),
        replayed_copies=resilience.replayed_copies,
        audit_violations=(
            len(auditor.violations) if auditor is not None else 0
        ),
    )


def run_fault_classes(
    emulator_name: str = "vSoC",
    duration_ms: float = DEFAULT_CHAOS_DURATION_MS,
    seed: int = 0,
    only: Optional[str] = None,
    audit: bool = False,
    strict_audit: bool = False,
) -> Dict[str, ChaosResult]:
    """One run per fault class, plus fault-free and the full scenario.

    This is the per-class report ``benchmarks/bench_chaos.py`` prints:
    how much FPS each class of disturbance costs on its own. ``only``
    restricts the sweep to a single class (the fault-free baseline is
    always included for comparison) — the shape the chaos CLI's
    one-line reproducer commands replay. ``audit``/``strict_audit``
    arm the invariant auditor on every run (strict = first violation
    raises), matching the ``--strict-audit`` CLI flag.
    """
    plans: Dict[str, FaultPlan] = {
        "fault-free": FaultPlan(),
        "bus-flap": FaultPlan().flap_bus(
            "pcie", start_ms=1_500.0, period_ms=500.0, cycles=6, high_load=0.85
        ),
        "copy-faults": FaultPlan().copy_faults(2_000.0, 4_500.0, probability=0.7, bus="pcie"),
        "device-stall": FaultPlan().stall_device(3_000.0, "gpu", duration_ms=120.0),
        "transport-drops": FaultPlan().transport_faults(
            2_500.0, 4_000.0, drop_probability=0.25
        ),
        "device-crash": crash_chaos_plan(),
        "full-chaos": default_chaos_plan(),
    }
    if only is not None:
        if only not in plans:
            raise ValueError(
                f"unknown fault class {only!r}; choices: {sorted(plans)}"
            )
        plans = {label: plan for label, plan in plans.items()
                 if label in ("fault-free", only)}
    return {
        label: run_chaos(
            emulator_name, duration_ms=duration_ms, seed=seed, plan=plan,
            audit=audit, strict_audit=strict_audit,
        )
        for label, plan in plans.items()
    }
