"""Design-choice ablations beyond the paper's figures.

The paper makes several quantitative design choices with one-line
justifications; these experiments regenerate the benchmarks behind them:

* **α = 0.5** for exponential smoothing — "empirically chosen according to
  our benchmarks" (§3.3). :func:`sweep_alpha` reruns that benchmark: the
  forecast error of slack-interval prediction across α.
* **compensation** — Figure 8's driver blocking. :func:`compensation_ablation`
  runs a tight-slack pipeline with the mechanism on and off.
* **suspension after 3 failures** — §3.3's corner case.
  :func:`suspension_ablation` feeds the engine an unpredictable flow and
  counts wasted prefetches with and without suspension.
* **buffering → slack** — §2.3 observes buffered pipelines have >30 ms
  slacks while unbuffered ones sit <20 ms. :func:`sweep_buffering` measures
  slack intervals against pipeline depth.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, Generator, List, Sequence

from repro.core.smoothing import ExponentialSmoothing
from repro.emulators import EMULATOR_FACTORIES
from repro.guest.vsync import VSyncSource
from repro.hw.machine import HIGH_END_DESKTOP, build_machine
from repro.metrics.collectors import SvmStats
from repro.sim import FifoQueue, Simulator, Timeout
from repro.sim.tracing import TraceLog
from repro.units import UHD_FRAME_BYTES, VSYNC_PERIOD_MS


# --- α sweep -------------------------------------------------------------------

def sweep_alpha(
    alphas: Sequence[float] = (0.1, 0.3, 0.5, 0.7, 0.9),
    seed: int = 0,
    samples: int = 400,
) -> Dict[float, float]:
    """Forecast RMS error of slack prediction per smoothing weight.

    The synthetic slack series mirrors what pipelines produce: a stable
    level with VSync-quantized noise and occasional regime shifts
    (pipeline rebuffering) — the regime where single exponential smoothing
    earns its keep.
    """
    rng = random.Random(seed)
    series: List[float] = []
    level = 17.0
    for i in range(samples):
        if i and i % 120 == 0:
            level = rng.choice([9.0, 17.0, 25.0, 33.0])  # buffering change
        series.append(max(0.5, level + rng.gauss(0.0, 1.2)))

    errors: Dict[float, float] = {}
    for alpha in alphas:
        predictor = ExponentialSmoothing(alpha=alpha)
        squared = 0.0
        counted = 0
        for value in series:
            prediction = predictor.predict()
            if prediction is not None:
                squared += (value - prediction) ** 2
                counted += 1
            predictor.update(value)
        errors[alpha] = (squared / counted) ** 0.5
    return errors


# --- compensation ablation -------------------------------------------------------

@dataclass
class CompensationResult:
    enabled: bool
    mean_read_latency_ms: float
    compensation_total_ms: float


def _tight_pipeline(sim, emulator, region, cycles, slack, latencies) -> Generator[Any, Any, None]:
    for _ in range(cycles):
        write = yield from emulator.stage(
            "camera", "deliver", UHD_FRAME_BYTES, writes=[region]
        )
        yield write.done
        if write.compensation == 0 and slack > 0:
            yield Timeout(slack)
        elif slack > write.compensation:
            yield Timeout(slack - write.compensation)
        read = yield from emulator.stage(
            "gpu", "render", UHD_FRAME_BYTES, reads=[region]
        )
        latencies.append(read.access_latency)
        yield read.done


def compensation_ablation(
    slack_ms: float = 0.8, cycles: int = 60, seed: int = 0
) -> Dict[bool, CompensationResult]:
    """Reads in a tight-slack pipeline, with and without Figure 8's delta."""
    results: Dict[bool, CompensationResult] = {}
    for enabled in (True, False):
        sim = Simulator()
        machine = build_machine(sim, HIGH_END_DESKTOP)
        emulator = EMULATOR_FACTORIES["vSoC"](sim, machine, rng=random.Random(seed))
        if not enabled:
            # Neutralize the driver-side wait: predict zero compensation.
            emulator.engine.predicted_compensation = lambda *args: 0.0
        region = emulator.svm_alloc(UHD_FRAME_BYTES)
        latencies: List[float] = []
        sim.spawn(
            _tight_pipeline(sim, emulator, region, cycles, slack_ms, latencies),
            name="tight",
        )
        sim.run(until=60_000.0)
        steady = latencies[3:]
        results[enabled] = CompensationResult(
            enabled=enabled,
            mean_read_latency_ms=sum(steady) / len(steady),
            compensation_total_ms=emulator.engine.stats.compensation_total_ms,
        )
    return results


# --- suspension ablation -----------------------------------------------------------

@dataclass
class SuspensionResult:
    threshold: int
    wasted_prefetches: int
    launched: int


def suspension_ablation(
    thresholds: Sequence[int] = (3, 10**9),
    cycles: int = 80,
    seed: int = 0,
) -> Dict[int, SuspensionResult]:
    """An adversarial flow (reader alternates unpredictably): how much
    prefetch bandwidth does the 3-strike suspension policy save?"""
    results: Dict[int, SuspensionResult] = {}
    for threshold in thresholds:
        sim = Simulator()
        machine = build_machine(sim, HIGH_END_DESKTOP)
        emulator = EMULATOR_FACTORIES["vSoC"](sim, machine, rng=random.Random(seed))
        emulator.engine.failure_threshold = threshold
        region = emulator.svm_alloc(UHD_FRAME_BYTES)

        def chaotic():
            for cycle in range(cycles):
                write = yield from emulator.stage(
                    "codec", emulator.decode_op(), UHD_FRAME_BYTES, writes=[region]
                )
                yield write.done
                yield Timeout(12.0)
                # strict reader alternation: the last generation's reader is
                # always the wrong prediction for the next one — the
                # worst case for per-flow history.
                if cycle % 2 == 0:
                    read = yield from emulator.stage(
                        "gpu", "render", UHD_FRAME_BYTES, reads=[region]
                    )
                else:
                    read = yield from emulator.stage(
                        "cpu", "track", UHD_FRAME_BYTES, reads=[region]
                    )
                yield read.done

        sim.spawn(chaotic(), name="chaotic")
        sim.run(until=120_000.0)
        stats = emulator.engine.stats
        results[threshold] = SuspensionResult(
            threshold=threshold,
            wasted_prefetches=stats.wasted_prefetches,
            launched=stats.launched,
        )
    return results


# --- buffering sweep ---------------------------------------------------------------

def sweep_buffering(
    depths: Sequence[int] = (1, 2, 4),
    duration_ms: float = 6_000.0,
    seed: int = 0,
) -> Dict[int, float]:
    """Mean slack interval versus pipeline buffer depth (§2.3's Fig 6).

    Deeper buffering decouples producer and consumer further, stretching
    the write→read gap — the paper's ">30 ms" bucket comes from buffered
    video pipelines.
    """
    results: Dict[int, float] = {}
    for depth in depths:
        sim = Simulator()
        machine = build_machine(sim, HIGH_END_DESKTOP)
        trace = TraceLog()
        emulator = EMULATOR_FACTORIES["vSoC"](
            sim, machine, trace=trace, rng=random.Random(seed)
        )
        vsync = VSyncSource(sim)
        regions = [emulator.svm_alloc(UHD_FRAME_BYTES) for _ in range(depth + 1)]
        free: FifoQueue = FifoQueue(sim)
        filled: FifoQueue = FifoQueue(sim)
        for rid in regions:
            free.try_put(rid)
        rng = random.Random(seed)

        def producer():
            yield Timeout(rng.uniform(0, VSYNC_PERIOD_MS))
            while True:
                cycle_start = sim.now
                rid = yield free.get()
                write = yield from emulator.stage(
                    "codec", emulator.decode_op(), UHD_FRAME_BYTES, writes=[rid]
                )
                yield write.done
                filled.try_put(rid)
                # real-time pacing: decode overlaps the frame period
                elapsed = sim.now - cycle_start
                period = VSYNC_PERIOD_MS * (1 + rng.uniform(-0.01, 0.01))
                if elapsed < period:
                    yield Timeout(period - elapsed)

        def consumer():
            # wait for the chain to fill before consuming (buffered start)
            while len(filled) < depth:
                yield Timeout(VSYNC_PERIOD_MS)
            while True:
                rid = yield filled.get()
                yield vsync.wait_next()
                read = yield from emulator.stage(
                    "gpu", "render", UHD_FRAME_BYTES, reads=[rid]
                )
                yield read.done
                free.try_put(rid)

        sim.spawn(producer(), name="producer")
        sim.spawn(consumer(), name="consumer")
        sim.run(until=duration_ms)
        stats = SvmStats(trace, duration_ms)
        slacks = stats.slack_intervals()
        results[depth] = sum(slacks) / len(slacks) if slacks else 0.0
    return results
