"""The experiment runner: (app, emulator, machine) → metrics.

Every run builds a fresh simulator, machine and emulator, installs the app
and runs for a fixed simulated duration. Runs are pure functions of their
seeds — rerunning an experiment reproduces its numbers bit-for-bit.

:func:`run_app` is the in-process primitive (it is what the engine's
workers execute); :func:`run_category` and :func:`run_emulator_suite` are
sweep helpers that route through :mod:`repro.experiments.engine` for
parallelism and memoization when given declarative app parameters.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.apps.base import App, AppResult
from repro.apps.catalog import AppParams, can_run
from repro.emulators import EMULATOR_FACTORIES
from repro.emulators.base import Emulator
from repro.hw.machine import HIGH_END_DESKTOP, MachineSpec, build_machine
from repro.metrics.collectors import SvmStats
from repro.sim import Simulator
from repro.sim import fastforward
from repro.sim.tracing import TraceLog

#: Simulated test length. The paper runs 5 minutes per app; 20 simulated
#: seconds past warmup is where our pipelines' steady-state FPS stabilizes
#: to within a frame, so sweeps default to it for tractable runtimes.
DEFAULT_DURATION_MS = 22_000.0


@dataclass
class AppRun:
    """One completed run: the app result plus SVM-level statistics.

    ``stats`` is a live :class:`SvmStats` when the run happened in this
    process, or the engine's picklable
    :class:`~repro.experiments.engine.StatsSummary` (same read API) when it
    came back from a worker or the cache — in which case ``emulator`` is
    ``None``. ``telemetry`` is a picklable
    :class:`~repro.obs.fleet.TelemetrySnapshot` when the run was executed
    with ``telemetry=True``.
    """

    result: AppResult
    emulator: Optional[Emulator]
    stats: Optional[Union[SvmStats, "StatsSummary"]]  # noqa: F821
    telemetry: Optional["TelemetrySnapshot"] = None  # noqa: F821
    fast_forward: Optional[Dict[str, object]] = None


def run_app(
    app: App,
    emulator_name: str,
    machine_spec: MachineSpec = HIGH_END_DESKTOP,
    duration_ms: float = DEFAULT_DURATION_MS,
    seed: int = 0,
    trace_kinds: Optional[Sequence[str]] = None,
    factory: Optional[Callable] = None,
    telemetry: bool = False,
    fast_forward: Optional[bool] = None,
    attribution: bool = False,
) -> AppRun:
    """Run one app on one emulator for ``duration_ms`` of simulated time.

    ``trace_kinds`` narrows instrumentation for speed; ``factory``
    overrides the emulator constructor (used for the §5.4 ablations).
    ``telemetry`` attaches the observability stack (tracer + registry +
    self-profiler) and captures a picklable
    :class:`~repro.obs.fleet.TelemetrySnapshot` onto the returned
    :class:`AppRun` — observability only reads the clock, so the
    simulated results are bit-identical either way.

    ``attribution`` (implies ``telemetry``) additionally folds the run's
    causal spans into a :class:`~repro.obs.critical.LatencyBudget` on the
    snapshot and mirrors the per-(category × device) totals into
    ``budget.ms`` counters so fleet rollups see them.  Attribution is
    post-hoc analysis of spans that were recorded anyway: it cannot
    perturb the run, and FPS/latency digests stay bit-identical with it
    on or off.

    ``fast_forward`` arms the steady-state skip detector (``None`` =
    process default, see ``repro.sim.fastforward.set_enabled``). It is a
    *pure* accelerator: the controller refuses to engage unless the frame
    cycle is proven exactly periodic, so results are bit-identical with
    it on or off. Telemetry runs skip it — live registry instruments are
    not journaled.
    """
    sim = Simulator()
    machine = build_machine(sim, machine_spec)
    trace = TraceLog(kinds=list(trace_kinds) if trace_kinds is not None else None)
    obs = None
    if telemetry or attribution:
        from repro.obs import Observability

        obs = Observability(sim)
    make = factory if factory is not None else EMULATOR_FACTORIES[emulator_name]
    rng = random.Random(seed)
    if obs is not None:
        try:
            emulator = make(sim, machine, trace=trace, rng=rng, obs=obs)
        except TypeError:
            # Custom factories (ablation partials) may not take ``obs``;
            # run them unobserved rather than failing the whole point.
            obs = None
            emulator = make(sim, machine, trace=trace, rng=rng)
    else:
        emulator = make(sim, machine, trace=trace, rng=rng)

    if not can_run(app.name, emulator_name):
        result = AppResult(
            app=app.name,
            category=app.category,
            emulator=emulator_name,
            duration_ms=duration_ms,
            ran=False,
            fail_reason="app incompatible with this emulator (crash/ANR, §5.3)",
        )
        return AppRun(result=result, emulator=None, stats=None)

    if obs is not None:
        app.fps.attach_registry(obs.registry)
    if not app.install(sim, emulator):
        return AppRun(
            result=app.collect(emulator_name, duration_ms), emulator=None, stats=None,
            telemetry=_capture_telemetry(obs, trace, app, emulator_name,
                                         duration_ms, seed, result=None,
                                         attribution=attribution),
        )

    ff_ctl = None
    if fast_forward is None:
        fast_forward = fastforward.enabled_default()
    if fast_forward and obs is None:
        from repro.sim.fastforward import FastForwardController, TraceChannel

        ff_ctl = FastForwardController(
            sim, period=app.vsync_period, horizon=duration_ms
        )
        ff_ctl.add_channel(TraceChannel(trace))
        app.ff_register(ff_ctl)
        ff_ctl.install()

    sim.run(until=duration_ms)
    if ff_ctl is not None and ff_ctl.disabled_reason is None:
        # Shut the mirror hook down cleanly for post-run trace consumers.
        ff_ctl._disable("run-complete")
    result = app.collect(emulator_name, duration_ms)
    ff_stats = ff_ctl.stats() if ff_ctl is not None else None
    return AppRun(
        result=result, emulator=emulator, stats=SvmStats(trace, duration_ms),
        telemetry=_capture_telemetry(obs, trace, app, emulator_name,
                                     duration_ms, seed, result=result,
                                     attribution=attribution,
                                     fast_forward=ff_stats),
        fast_forward=ff_stats,
    )


def _capture_telemetry(obs, trace, app, emulator_name, duration_ms, seed, result,
                       attribution=False, fast_forward=None):
    """Freeze an observed run's state into a picklable snapshot."""
    if obs is None:
        return None
    from repro.metrics.collectors import ResilienceStats
    from repro.obs.fleet import TelemetrySnapshot

    ResilienceStats(trace).to_registry(obs.registry)
    budget = None
    if attribution:
        from repro.obs.critical import analyze_tracer

        budget = analyze_tracer(obs.tracer, fast_forward=fast_forward)
        # Mirror the per-cell totals into counters: fleet rollups and the
        # dashboard then aggregate budgets with zero aggregator changes.
        for (category, device), ms in budget.totals().items():
            obs.registry.counter(
                "budget.ms", category=category, device=device
            ).inc(ms)
    meta = {
        "app": app.name,
        "category": app.category,
        "emulator": emulator_name,
        "duration_ms": duration_ms,
        "seed": seed,
        "ran": int(result is not None and result.ran),
    }
    if result is not None:
        meta["fps"] = round(result.fps, 6)
        meta["presented"] = result.presented
    return TelemetrySnapshot.capture(
        obs.registry, profiler=obs.profiler, tracer=obs.tracer, meta=meta,
        attribution=budget,
    )


def run_category(
    apps: Sequence[Union[App, AppParams]],
    emulator_name: str,
    machine_spec: MachineSpec = HIGH_END_DESKTOP,
    duration_ms: float = DEFAULT_DURATION_MS,
    seed: int = 0,
    jobs: Optional[int] = None,
    cache: bool = True,
) -> List[AppRun]:
    """Run a list of apps on one emulator.

    Declarative ``(factory, kwargs)`` parameters (see
    :func:`repro.apps.catalog.emerging_app_params`) route through the
    engine — parallel across ``jobs`` cores, memoized on disk. Live
    :class:`App` instances cannot cross a process boundary, so they take
    the direct in-process path with no memoization.
    """
    if any(isinstance(a, App) for a in apps):
        from repro.apps.catalog import build_app

        return [
            run_app(
                app if isinstance(app, App) else build_app(app),
                emulator_name, machine_spec, duration_ms, seed=seed,
            )
            for app in apps
        ]
    from repro.experiments.engine import run_many, specs_for_apps

    specs = specs_for_apps(
        list(apps), emulator_name, machine_spec, duration_ms, seed=seed
    )
    report = run_many(specs, jobs=jobs, cache=cache)
    return [
        AppRun(result=r.result, emulator=None, stats=r.stats)
        for r in report.results
    ]


def run_emulator_suite(
    make_apps: Callable[[], Sequence[Union[App, AppParams]]],
    emulator_names: Sequence[str],
    machine_spec: MachineSpec = HIGH_END_DESKTOP,
    duration_ms: float = DEFAULT_DURATION_MS,
    seed: int = 0,
    jobs: Optional[int] = None,
    cache: bool = True,
) -> Dict[str, List[AppRun]]:
    """Run a (re-instantiated) app list on every emulator.

    With a parameter-producing ``make_apps`` (e.g.
    ``lambda: emerging_app_params(seed=0)``) the whole suite — every
    (app, emulator) pair — is fanned out through the engine at once, so
    parallelism is not limited to one emulator's apps at a time.
    """
    per_emulator = {name: list(make_apps()) for name in emulator_names}
    if any(isinstance(a, App) for apps in per_emulator.values() for a in apps):
        return {
            name: run_category(apps, name, machine_spec, duration_ms, seed=seed)
            for name, apps in per_emulator.items()
        }
    from repro.experiments.engine import run_many, specs_for_apps

    flat = []
    for name, params in per_emulator.items():
        flat.extend(
            specs_for_apps(params, name, machine_spec, duration_ms, seed=seed)
        )
    report = run_many(flat, jobs=jobs, cache=cache)
    merged: Dict[str, List[AppRun]] = {}
    cursor = 0
    for name, params in per_emulator.items():
        chunk = report.results[cursor:cursor + len(params)]
        cursor += len(params)
        merged[name] = [
            AppRun(result=r.result, emulator=None, stats=r.stats) for r in chunk
        ]
    return merged


def mean_fps(runs: Sequence[AppRun]) -> Optional[float]:
    """Average FPS over the runs that ran; None if none did."""
    values = [r.result.fps for r in runs if r.result.ran]
    if not values:
        return None
    return sum(values) / len(values)


def mean_latency(runs: Sequence[AppRun]) -> Optional[float]:
    """Average motion-to-photon latency over runs that measured one."""
    values = [
        r.result.latency_avg for r in runs if r.result.ran and r.result.latency_avg
    ]
    if not values:
        return None
    return sum(values) / len(values)
