"""The experiment runner: (app, emulator, machine) → metrics.

Every run builds a fresh simulator, machine and emulator, installs the app
and runs for a fixed simulated duration. Runs are pure functions of their
seeds — rerunning an experiment reproduces its numbers bit-for-bit.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.apps.base import App, AppResult
from repro.apps.catalog import can_run
from repro.emulators import EMULATOR_FACTORIES
from repro.emulators.base import Emulator
from repro.hw.machine import HIGH_END_DESKTOP, MachineSpec, build_machine
from repro.metrics.collectors import SvmStats
from repro.sim import Simulator
from repro.sim.tracing import TraceLog

#: Simulated test length. The paper runs 5 minutes per app; 20 simulated
#: seconds past warmup is where our pipelines' steady-state FPS stabilizes
#: to within a frame, so sweeps default to it for tractable runtimes.
DEFAULT_DURATION_MS = 22_000.0


@dataclass
class AppRun:
    """One completed run: the app result plus SVM-level statistics."""

    result: AppResult
    emulator: Optional[Emulator]
    stats: Optional[SvmStats]


def run_app(
    app: App,
    emulator_name: str,
    machine_spec: MachineSpec = HIGH_END_DESKTOP,
    duration_ms: float = DEFAULT_DURATION_MS,
    seed: int = 0,
    trace_kinds: Optional[Sequence[str]] = None,
    factory: Optional[Callable] = None,
) -> AppRun:
    """Run one app on one emulator for ``duration_ms`` of simulated time.

    ``trace_kinds`` narrows instrumentation for speed; ``factory``
    overrides the emulator constructor (used for the §5.4 ablations).
    """
    sim = Simulator()
    machine = build_machine(sim, machine_spec)
    trace = TraceLog(kinds=list(trace_kinds) if trace_kinds is not None else None)
    make = factory if factory is not None else EMULATOR_FACTORIES[emulator_name]
    emulator = make(sim, machine, trace=trace, rng=random.Random(seed))

    if not can_run(app.name, emulator_name):
        result = AppResult(
            app=app.name,
            category=app.category,
            emulator=emulator_name,
            duration_ms=duration_ms,
            ran=False,
            fail_reason="app incompatible with this emulator (crash/ANR, §5.3)",
        )
        return AppRun(result=result, emulator=None, stats=None)

    if not app.install(sim, emulator):
        return AppRun(
            result=app.collect(emulator_name, duration_ms), emulator=None, stats=None
        )

    sim.run(until=duration_ms)
    result = app.collect(emulator_name, duration_ms)
    return AppRun(result=result, emulator=emulator, stats=SvmStats(trace, duration_ms))


def run_category(
    apps: Sequence[App],
    emulator_name: str,
    machine_spec: MachineSpec = HIGH_END_DESKTOP,
    duration_ms: float = DEFAULT_DURATION_MS,
    seed: int = 0,
) -> List[AppRun]:
    """Run a list of apps on one emulator."""
    return [
        run_app(app, emulator_name, machine_spec, duration_ms, seed=seed)
        for app in apps
    ]


def run_emulator_suite(
    make_apps: Callable[[], Sequence[App]],
    emulator_names: Sequence[str],
    machine_spec: MachineSpec = HIGH_END_DESKTOP,
    duration_ms: float = DEFAULT_DURATION_MS,
    seed: int = 0,
) -> Dict[str, List[AppRun]]:
    """Run a (re-instantiated) app list on every emulator."""
    return {
        name: run_category(list(make_apps()), name, machine_spec, duration_ms, seed=seed)
        for name in emulator_names
    }


def mean_fps(runs: Sequence[AppRun]) -> Optional[float]:
    """Average FPS over the runs that ran; None if none did."""
    values = [r.result.fps for r in runs if r.result.ran]
    if not values:
        return None
    return sum(values) / len(values)


def mean_latency(runs: Sequence[AppRun]) -> Optional[float]:
    """Average motion-to-photon latency over runs that measured one."""
    values = [
        r.result.latency_avg for r in runs if r.result.ran and r.result.latency_avg
    ]
    if not values:
        return None
    return sum(values) / len(values)
