"""Sensitivity sweeps: where does the architecture gap open and close?

The paper's results hold on two fixed machines; these sweeps vary the
machine to locate the crossovers:

* :func:`sweep_boundary_bandwidth` — how fast would the virtualization
  boundary have to be before the guest-memory architecture matches vSoC?
  (The modular architecture's deficit is *bandwidth-bound*: with an
  infinitely fast boundary, its two extra copies would be free.)
* :func:`sweep_pcie_bandwidth` — how slow can the host's DMA path get
  before prefetch can no longer hide coherence under the slack intervals?

Each sweep point is a :class:`~repro.experiments.engine.RunSpec` whose
machine spec carries the override, so points run in parallel and memoize
independently.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Type

from repro.apps.base import App
from repro.apps.catalog import app_factory_path
from repro.apps.video import UhdVideoApp
from repro.experiments.engine import RunSpec, run_many, run_one
from repro.hw.machine import HIGH_END_DESKTOP, MachineSpec


def _spec_with(base: MachineSpec, **overrides) -> MachineSpec:
    return dataclasses.replace(base, **overrides)


def _sweep_specs(
    field: str,
    gbps_values: Sequence[float],
    emulator: str,
    app_cls: Type[App],
    base: MachineSpec,
    duration_ms: float,
    seed: int,
) -> List[RunSpec]:
    return [
        RunSpec(
            app_factory=app_factory_path(app_cls),
            app_kwargs={},
            emulator=emulator,
            machine_spec=_spec_with(base, **{field: gbps}),
            duration_ms=duration_ms,
            seed=seed,
        )
        for gbps in gbps_values
    ]


def sweep_boundary_bandwidth(
    gbps_values: Sequence[float] = (2.0, 4.6, 9.0, 18.0, 36.0),
    emulator: str = "GAE",
    app_cls: Type[App] = UhdVideoApp,
    base: MachineSpec = HIGH_END_DESKTOP,
    duration_ms: float = 8_000.0,
    seed: int = 0,
    jobs: Optional[int] = None,
    cache: bool = True,
) -> Dict[float, float]:
    """FPS of a guest-memory emulator as its boundary path speeds up."""
    specs = _sweep_specs("boundary_copy_gbps", gbps_values, emulator, app_cls,
                         base, duration_ms, seed)
    report = run_many(specs, jobs=jobs, cache=cache)
    return {
        gbps: run.result.fps for gbps, run in zip(gbps_values, report.results)
    }


def sweep_pcie_bandwidth(
    gbps_values: Sequence[float] = (1.0, 2.0, 3.5, 7.0, 14.0),
    emulator: str = "vSoC",
    app_cls: Type[App] = UhdVideoApp,
    base: MachineSpec = HIGH_END_DESKTOP,
    duration_ms: float = 8_000.0,
    seed: int = 0,
    jobs: Optional[int] = None,
    cache: bool = True,
) -> Dict[float, float]:
    """vSoC's FPS as the host→GPU DMA path degrades.

    Prefetch hides coherence while the copy fits under the slack interval
    (~8-16 ms); once the UHD-frame copy time crosses it, compensation and
    chain reactions start eating frames.
    """
    specs = _sweep_specs("pcie_gbps", gbps_values, emulator, app_cls,
                         base, duration_ms, seed)
    report = run_many(specs, jobs=jobs, cache=cache)
    return {
        gbps: run.result.fps for gbps, run in zip(gbps_values, report.results)
    }


def boundary_crossover(
    reference_fps: Optional[float] = None,
    tolerance: float = 0.95,
    base: MachineSpec = HIGH_END_DESKTOP,
    duration_ms: float = 8_000.0,
    gbps_values: Sequence[float] = (4.6, 9.0, 18.0, 36.0, 72.0),
    seed: int = 0,
    jobs: Optional[int] = None,
    cache: bool = True,
) -> Optional[float]:
    """Smallest swept boundary bandwidth at which GAE reaches ``tolerance``
    of vSoC's FPS — i.e. how much faster the boundary would need to be for
    the modular architecture to catch up. ``None`` if it never does
    (decode-bound emulators can't be fixed by memory bandwidth alone)."""
    if reference_fps is None:
        reference = run_one(
            RunSpec(
                app_factory=app_factory_path(UhdVideoApp),
                app_kwargs={},
                emulator="vSoC",
                machine_spec=base,
                duration_ms=duration_ms,
                seed=seed,
            ),
            cache=cache,
        )
        reference_fps = reference.result.fps
    sweep = sweep_boundary_bandwidth(
        gbps_values, base=base, duration_ms=duration_ms, seed=seed,
        jobs=jobs, cache=cache,
    )
    for gbps in sorted(sweep):
        if sweep[gbps] >= tolerance * reference_fps:
            return gbps
    return None
