"""The parallel, memoized experiment engine.

The paper's evaluation (§5, Figs 4-16, Table 2) is hundreds of independent
``(app, emulator, machine, duration, seed)`` points. Each point is a *pure
function* of its spec — the kernel consults no wall clock and no unseeded
randomness — so the engine exploits that purity twice:

* **Parallelism** — :func:`run_many` fans independent specs across CPU
  cores with a :class:`~concurrent.futures.ProcessPoolExecutor` and merges
  results back *in submission order*, so a parallel sweep is bit-identical
  to the serial one (asserted by tests). Workers are forked, inheriting the
  parent's hash seed, which keeps any set/dict iteration order identical
  across the pool.
* **Memoization** — a content-addressed on-disk cache under
  ``.repro-cache/`` keyed by ``sha256(source fingerprint ‖ canonical
  spec)``. Repeated sweeps, benchmarks and CI re-runs skip
  already-simulated points; editing anything under ``src/repro`` changes
  the fingerprint and invalidates every entry at once. Corrupt or
  truncated entries are discarded, never trusted.

Specs
-----
:class:`RunSpec` declares one app run (the common case); :class:`PointSpec`
declares an arbitrary pure module-level function call (used by the density
experiment, whose unit of work is *several* emulator instances sharing one
simulator). Both are plain picklable data; app constructors and emulator
factories are referenced by dotted path, never by object.

Results
-------
Workers return a :class:`RunResult` — the run's :class:`AppResult` plus a
:class:`StatsSummary`, a frozen picklable digest exposing the same read API
as :class:`~repro.metrics.collectors.SvmStats`. Live simulator state never
crosses the process boundary.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import asdict, dataclass, field, is_dataclass
from functools import lru_cache, partial
from pathlib import Path
from typing import Any, Callable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.hw.machine import HIGH_END_DESKTOP, MachineSpec
from repro.metrics.stats import mean

#: Bump to invalidate every cache entry on an engine format change.
CACHE_FORMAT = 1

#: Default cache location (overridable via the environment for CI).
CACHE_DIR_ENV = "REPRO_CACHE_DIR"
DEFAULT_CACHE_DIR = ".repro-cache"

#: Set to any non-empty value to skip the worker-count CPU clamp (the
#: pool-determinism tests use it to exercise a real pool on small hosts).
OVERSUBSCRIBE_ENV = "REPRO_ENGINE_OVERSUBSCRIBE"


# ---------------------------------------------------------------------------
# Specs
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class RunSpec:
    """One (app, emulator, machine, duration, seed) experiment point.

    Everything here is plain data: ``app_factory`` / ``emulator_factory``
    are dotted ``"pkg.mod:name"`` paths resolved inside the worker, and
    ``machine_spec`` is the frozen calibration dataclass itself.
    """

    app_factory: str
    app_kwargs: Mapping[str, Any]
    emulator: str
    machine_spec: MachineSpec = HIGH_END_DESKTOP
    duration_ms: float = 22_000.0
    seed: int = 0
    trace_kinds: Optional[Tuple[str, ...]] = None
    emulator_factory: Optional[str] = None
    emulator_kwargs: Mapping[str, Any] = field(default_factory=dict)
    #: Capture a TelemetrySnapshot in the worker (see repro.obs.fleet).
    telemetry: bool = False
    #: Fold the run's spans into a LatencyBudget on the snapshot (implies
    #: telemetry; see repro.obs.critical).
    attribution: bool = False

    @property
    def app_name(self) -> str:
        return self.app_kwargs.get("name", self.app_factory.rsplit(":", 1)[-1])


@dataclass(frozen=True)
class PointSpec:
    """An arbitrary pure experiment point: ``fn(**kwargs)``.

    ``fn`` must be a module-level function addressed by dotted path whose
    result is picklable and fully determined by ``kwargs`` — the escape
    hatch for experiments whose unit of work is not a single app run
    (e.g. a density point running N instances in one simulator).
    """

    fn: str
    kwargs: Mapping[str, Any] = field(default_factory=dict)


Spec = Union[RunSpec, PointSpec]


# ---------------------------------------------------------------------------
# Results
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class StatsSummary:
    """Picklable digest of :class:`~repro.metrics.collectors.SvmStats`.

    Exposes the same read API (method-for-method) so post-hoc consumers —
    Table 2 aggregation, the Fig 16 CDF — work unchanged on engine results.
    """

    duration_ms: float
    access_latency_samples: Tuple[float, ...]
    access_bytes_total: int
    coherence_samples: Tuple[float, ...]
    slack_samples: Tuple[float, ...]

    @classmethod
    def from_stats(cls, stats: Any) -> "StatsSummary":
        return cls(
            duration_ms=stats.duration_ms,
            access_latency_samples=tuple(stats.access_latencies()),
            access_bytes_total=sum(
                int(v) for v in stats.trace.values("svm.access_latency", "bytes")
            ),
            coherence_samples=tuple(stats.coherence_durations()),
            slack_samples=tuple(stats.slack_intervals()),
        )

    # -- SvmStats-compatible read API --------------------------------------
    def access_latencies(self) -> List[float]:
        return list(self.access_latency_samples)

    def coherence_durations(self) -> List[float]:
        return list(self.coherence_samples)

    def slack_intervals(self) -> List[float]:
        return list(self.slack_samples)

    def average_access_latency(self) -> Optional[float]:
        return mean(self.access_latency_samples) if self.access_latency_samples else None

    def average_coherence_cost(self) -> Optional[float]:
        return mean(self.coherence_samples) if self.coherence_samples else None

    def throughput_bytes_per_ms(self) -> float:
        if self.duration_ms <= 0:
            return 0.0
        return self.access_bytes_total / self.duration_ms


@dataclass(frozen=True)
class RunResult:
    """What one :class:`RunSpec` produces (and what the cache stores).

    ``telemetry`` is the worker's :class:`~repro.obs.fleet.TelemetrySnapshot`
    when the spec asked for one — cached alongside the result, so a
    warm-cache rerun replays telemetry bit-for-bit without simulating.
    """

    result: Any  # AppResult
    stats: Optional[StatsSummary]
    telemetry: Optional[Any] = None  # TelemetrySnapshot


# ---------------------------------------------------------------------------
# Cache keys
# ---------------------------------------------------------------------------

def _canon(value: Any) -> Any:
    """Reduce a spec field to canonical JSON-able data."""
    if is_dataclass(value) and not isinstance(value, type):
        return {"__dataclass__": type(value).__name__, **_canon(asdict(value))}
    if isinstance(value, Mapping):
        return {str(k): _canon(v) for k, v in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [_canon(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise TypeError(
        f"spec field {value!r} is not canonicalizable; specs must be plain data"
    )


def canonical_spec(spec: Spec) -> str:
    """Deterministic JSON form of a spec — the identity half of the key."""
    payload = {"__spec__": type(spec).__name__, **_canon(asdict(spec))}
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


@lru_cache(maxsize=8)
def source_fingerprint(root: Optional[str] = None) -> str:
    """Content hash over every ``*.py`` under ``src/repro`` (or ``root``).

    Folded into every cache key so that *any* source change — kernel,
    emulators, apps, the engine itself — invalidates all cached runs. The
    hash covers file contents, not mtimes, so a rebuilt checkout with
    identical sources keeps its cache.
    """
    if root is None:
        import repro

        base = Path(repro.__file__).resolve().parent
    else:
        base = Path(root)
    digest = hashlib.sha256()
    for path in sorted(base.rglob("*.py")):
        digest.update(str(path.relative_to(base)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()


def cache_key(spec: Spec, fingerprint: Optional[str] = None) -> str:
    """``sha256(source fingerprint ‖ canonical spec)`` — the cache address."""
    if fingerprint is None:
        fingerprint = source_fingerprint()
    digest = hashlib.sha256()
    digest.update(fingerprint.encode())
    digest.update(b"\0")
    digest.update(canonical_spec(spec).encode())
    return digest.hexdigest()


# ---------------------------------------------------------------------------
# On-disk cache
# ---------------------------------------------------------------------------

class RunCache:
    """Content-addressed pickle store under one directory.

    One file per entry (``<key>.pkl``), written atomically via a temp file
    + rename so a crashed writer can never publish a half-written entry.
    Loads are paranoid: any unpickling error, format mismatch or key
    mismatch discards the entry and reports a miss.
    """

    def __init__(self, directory: Optional[Union[str, Path]] = None):
        if directory is None:
            directory = os.environ.get(CACHE_DIR_ENV, DEFAULT_CACHE_DIR)
        self.directory = Path(directory)

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.pkl"

    def load(self, key: str) -> Optional[Any]:
        """The cached payload for ``key``, or None (corruption = miss)."""
        path = self._path(key)
        try:
            with open(path, "rb") as fh:
                entry = pickle.load(fh)
            if (
                not isinstance(entry, dict)
                or entry.get("format") != CACHE_FORMAT
                or entry.get("key") != key
            ):
                raise ValueError("cache entry does not match its address")
            return entry["payload"]
        except FileNotFoundError:
            return None
        except Exception:
            # Truncated pickle, stale format, wrong key, unreadable file:
            # drop the entry so the next write repairs it.
            try:
                path.unlink()
            except OSError:
                pass
            return None

    def store(self, key: str, payload: Any) -> None:
        """Atomically persist ``payload`` under ``key``."""
        self.directory.mkdir(parents=True, exist_ok=True)
        entry = {"format": CACHE_FORMAT, "key": key, "payload": payload}
        tmp = self._path(key).with_suffix(f".tmp.{os.getpid()}")
        with open(tmp, "wb") as fh:
            pickle.dump(entry, fh, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, self._path(key))


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------

def _resolve(path: str) -> Callable[..., Any]:
    module_name, _, attr = path.partition(":")
    module = __import__(module_name, fromlist=[attr])
    return getattr(module, attr)


def execute_spec(spec: Spec) -> Any:
    """Run one spec to completion in *this* process (the worker body)."""
    if isinstance(spec, PointSpec):
        return _resolve(spec.fn)(**dict(spec.kwargs))
    from repro.experiments.runner import run_app

    app = _resolve(spec.app_factory)(**dict(spec.app_kwargs))
    factory = None
    if spec.emulator_factory is not None:
        factory = partial(_resolve(spec.emulator_factory), **dict(spec.emulator_kwargs))
    run = run_app(
        app,
        spec.emulator,
        machine_spec=spec.machine_spec,
        duration_ms=spec.duration_ms,
        seed=spec.seed,
        trace_kinds=list(spec.trace_kinds) if spec.trace_kinds is not None else None,
        factory=factory,
        telemetry=spec.telemetry,
        attribution=spec.attribution,
    )
    stats = StatsSummary.from_stats(run.stats) if run.stats is not None else None
    return RunResult(result=run.result, stats=stats, telemetry=run.telemetry)


@dataclass
class EngineReport:
    """One :func:`run_many` invocation: ordered results + cache accounting.

    ``jobs`` is what the caller *requested*; ``effective_jobs`` is the
    worker count actually usable after clamping to the host's available
    CPUs — on a 1-CPU box a ``--jobs 32`` sweep reports ``effective_jobs
    == 1``, so downstream consumers (the bench payload) can't publish a
    misleading "parallel" number.
    """

    results: List[Any]
    cache_hits: int
    executed: int
    jobs: int
    wall_s: float
    effective_jobs: int = 1
    #: How misses actually executed: ``"inline"`` (no pool was spun up —
    #: one effective worker, or every spec was a cache hit) or ``"pool"``.
    #: Bench payloads record it so a parallel_speedup measured against an
    #: inline run is never mistaken for pool overhead (or vice versa).
    parallel_mode: str = "inline"

    @property
    def hit_rate(self) -> float:
        total = self.cache_hits + self.executed
        return self.cache_hits / total if total else 0.0


#: Session-wide defaults, set by the CLI's ``--jobs`` / ``--no-cache``
#: flags. They apply only where a caller left the argument unspecified
#: (``jobs=None`` / ``cache=True``); explicit values always win.
_default_jobs: Optional[int] = None
_cache_default: bool = True


def set_default_jobs(jobs: Optional[int]) -> None:
    """Worker count used when ``run_many`` is called with ``jobs=None``."""
    global _default_jobs
    _default_jobs = jobs


def set_cache_default(enabled: bool) -> None:
    """Globally disable (or re-enable) memoization for unspecified callers."""
    global _cache_default
    _cache_default = enabled


def default_jobs() -> int:
    """Worker count when the caller does not say: one per available core."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _pool_context():
    """Fork where available: ~10 ms per worker instead of a fresh
    interpreter, and children inherit the parent's hash seed so set/dict
    iteration order — and therefore every simulated trace — is identical
    across the pool."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - platforms without fork
        return multiprocessing.get_context()


def run_many(
    specs: Sequence[Spec],
    jobs: Optional[int] = None,
    cache: Union[bool, RunCache] = True,
    cache_dir: Optional[Union[str, Path]] = None,
) -> EngineReport:
    """Run every spec, in parallel, through the cache; ordered results.

    ``jobs=None`` defers to :func:`set_default_jobs` (serial when unset);
    ``1`` runs serially in-process (no pool overhead);
    ``jobs=N`` fans cache misses over N forked workers, clamped to the
    host's available CPUs — oversubscribing a pure-CPU simulation only
    adds scheduler thrash and misleading speedup numbers. Results always
    come back in ``specs`` order regardless of completion order, so
    parallel and serial invocations of the same sweep are interchangeable.

    ``cache=False`` disables memoization; ``cache_dir`` points the run at a
    non-default store (tests use a temp dir).
    """
    t0 = time.perf_counter()
    specs = list(specs)
    if jobs is None:
        jobs = _default_jobs
    store: Optional[RunCache] = None
    if isinstance(cache, RunCache):
        store = cache
    elif cache and _cache_default:
        store = RunCache(cache_dir)

    results: List[Any] = [None] * len(specs)
    misses: List[Tuple[int, Spec, Optional[str]]] = []
    hits = 0
    if store is not None:
        fingerprint = source_fingerprint()
        for index, spec in enumerate(specs):
            key = cache_key(spec, fingerprint)
            payload = store.load(key)
            if payload is None:
                misses.append((index, spec, key))
            else:
                results[index] = payload
                hits += 1
    else:
        misses = [(index, spec, None) for index, spec in enumerate(specs)]

    requested = jobs if jobs is not None else 1
    effective = max(1, min(requested, default_jobs()))
    if os.environ.get(OVERSUBSCRIBE_ENV):
        # Escape hatch (tests, experiments): honor the requested worker
        # count even past the host's CPU count.
        effective = max(1, requested)
    parallel_mode = "inline"
    if misses:
        worker_count = max(1, min(effective, len(misses)))
        if worker_count == 1:
            produced = [execute_spec(spec) for _index, spec, _key in misses]
        else:
            parallel_mode = "pool"
            with ProcessPoolExecutor(
                max_workers=worker_count, mp_context=_pool_context()
            ) as pool:
                # map() preserves submission order — the deterministic merge.
                produced = list(pool.map(execute_spec, [s for _i, s, _k in misses]))
        for (index, _spec, key), payload in zip(misses, produced):
            results[index] = payload
            if store is not None and key is not None:
                store.store(key, payload)

    return EngineReport(
        results=results,
        cache_hits=hits,
        executed=len(misses),
        jobs=requested,
        wall_s=time.perf_counter() - t0,
        effective_jobs=effective,
        parallel_mode=parallel_mode,
    )


def run_one(spec: Spec, cache: Union[bool, RunCache] = True,
            cache_dir: Optional[Union[str, Path]] = None) -> Any:
    """Single-spec convenience wrapper over :func:`run_many`."""
    return run_many([spec], jobs=1, cache=cache, cache_dir=cache_dir).results[0]


# ---------------------------------------------------------------------------
# Spec builders
# ---------------------------------------------------------------------------

def specs_for_apps(
    app_params: Sequence[Tuple[str, Mapping[str, Any]]],
    emulator: str,
    machine_spec: MachineSpec = HIGH_END_DESKTOP,
    duration_ms: float = 22_000.0,
    seed: int = 0,
    trace_kinds: Optional[Sequence[str]] = None,
    emulator_factory: Optional[str] = None,
    emulator_kwargs: Optional[Mapping[str, Any]] = None,
    telemetry: bool = False,
    attribution: bool = False,
) -> List[RunSpec]:
    """RunSpecs for a catalog parameter list on one emulator/machine."""
    kinds = tuple(trace_kinds) if trace_kinds is not None else None
    return [
        RunSpec(
            app_factory=path,
            app_kwargs=dict(kwargs),
            emulator=emulator,
            machine_spec=machine_spec,
            duration_ms=duration_ms,
            seed=seed,
            trace_kinds=kinds,
            emulator_factory=emulator_factory,
            emulator_kwargs=dict(emulator_kwargs or {}),
            telemetry=telemetry,
            attribution=attribution,
        )
        for path, kwargs in app_params
    ]
