"""CLI: regenerate any table or figure of the paper.

Usage::

    python -m repro.experiments table2
    python -m repro.experiments fig10 [--quick] [--jobs 4]
    python -m repro.experiments all --quick --jobs 4
    python -m repro.experiments bench --jobs 4 [--check]
    python -m repro.experiments observe --app ar --export trace.json \
        --metrics metrics.json
    python -m repro.experiments dashboard --out report.html
    python -m repro.experiments recover [--quick] [--report audit.json] \
        [--strict-audit]
    python -m repro.experiments chaos [--seed 0] [--fault-class device-crash] \
        [--strict-audit]
    python -m repro.experiments fuzz [--max-samples 50] [--seed 0] \
        [--fuzz-dir fuzz-reproducers] [--replay repro.json]
    python -m repro.experiments fleetserve [--quick] [--seed 0] \
        [--out fleet.html] [--report fleet.json] [--live out/]
    python -m repro.experiments flightdeck --events out/events.jsonl \
        [--out flightdeck.html]
    python -m repro.experiments explain --app ar --emulator vsoc \
        [--against qemu_kvm] [--out attribution.json] [--deadline 50]

Each command prints the regenerated rows/series next to the paper's
reference values. ``--quick`` shortens simulated durations and app counts
(same shapes, coarser numbers). ``--jobs N`` fans the engine-backed sweeps
over N worker processes and ``--no-cache`` disables the on-disk run cache
(both apply to every command). ``observe`` runs one app with the
observability stack enabled and exports a Perfetto-compatible trace plus
a metrics/self-profile JSON; ``bench`` measures the engine itself, writes
``BENCH_engine.json``, appends to ``BENCH_history.jsonl`` and — with
``--check`` — gates on the history's EWMA baselines; ``dashboard`` sweeps
the telemetry grid and renders a self-contained HTML report (all three are
excluded from ``all``).
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict

from repro.experiments import appbench, breakdown, measurement, microbench, popular
from repro.experiments.report import (
    PAPER_FIG10_IMPROVEMENT,
    PAPER_FIG15_IMPROVEMENT,
    PAPER_RUNNABLE_EMERGING,
    PAPER_RUNNABLE_POPULAR,
    PAPER_TABLE2,
    fmt,
    format_cdf_summary,
    format_sizes_mib,
    format_table,
)
from repro.hw.machine import HIGH_END_DESKTOP, MIDDLE_END_LAPTOP
from repro.units import MIB


def _durations(quick: bool):
    if quick:
        return dict(duration_ms=8_000.0, apps_per_category=3)
    return dict(duration_ms=22_000.0, apps_per_category=10)


def cmd_table2(quick: bool) -> None:
    duration = 8_000.0 if quick else 15_000.0
    table = microbench.run_table2(duration_ms=duration)
    rows = []
    for emu, machines in table.items():
        for machine, r in machines.items():
            paper = PAPER_TABLE2[(emu, machine)]
            rows.append([
                emu, machine,
                f"{r.access_latency_ms:.2f} ({paper[0]})",
                f"{r.coherence_cost_ms:.2f} ({paper[1]})",
                f"{r.throughput_gbps:.2f} ({paper[2]})",
                fmt(r.prediction_accuracy and r.prediction_accuracy * 100, 1),
            ])
    print("Table 2 — SVM performance, measured (paper):")
    print(format_table(
        ["Emulator", "Machine", "AccessLat ms", "Coherence ms", "Thru GB/s", "PredAcc %"],
        rows,
    ))
    vsoc = table["vSoC"]["high-end-desktop"]
    print(f"\nPrediction std errors (paper: slack 0.9 ms, prefetch 0.3 ms): "
          f"slack={fmt(vsoc.slack_std_error_ms)} ms, "
          f"prefetch={fmt(vsoc.prefetch_std_error_ms, 4)} ms")
    print(f"Framework memory overhead (paper: <=3.1 MiB): "
          f"{vsoc.framework_overhead_bytes / MIB:.3f} MiB")


def cmd_fig4(quick: bool) -> None:
    kw = _durations(quick)
    results = measurement.run_fig4(**kw)
    print("Figure 4 — shared memory sizes (paper spikes: 9.9 MiB and 15.8 MiB):")
    for platform, r in results.items():
        sizes = measurement.prevalent_sizes(r)
        big = sum(1 for s in r.region_sizes if s > MIB) / max(1, len(r.region_sizes))
        print(f"  {platform:14s} prevalent: {format_sizes_mib(sizes)}; "
              f">1 MiB: {100 * big:.0f}% (paper: 49%)")
        print("    " + format_cdf_summary(
            [(s / MIB, p) for s, p in r.size_cdf()], "size MiB CDF"))
    proxy = results["device-proxy"]
    shares = sorted(proxy.access_share_by_service().items(), key=lambda kv: -kv[1])
    print("\n§2.3 observations (device-proxy):")
    print("  top shared-memory users (paper: media 28%, SurfaceFlinger 23%, "
          "camera 19%):")
    for service, share in shares:
        print(f"    {service:16s} {100 * share:4.0f}%")
    print(f"  regions serving <=2 accessors: "
          f"{100 * proxy.few_accessor_fraction():.0f}% (paper: 99%)")
    if proxy.cyclic_fraction is not None:
        print(f"  cyclic W/R pattern in pipeline regions: "
              f"{100 * proxy.cyclic_fraction:.0f}% (paper: 96%)")
    print(f"  shared-memory API call rate: {proxy.api_calls_per_second:.0f}/s "
          f"per app incl. end_access (paper: 261-323 begin/s)")


def cmd_fig5(quick: bool) -> None:
    kw = _durations(quick)
    results = measurement.run_fig5(**kw)
    print("Figure 5 — coherence durations (paper avg: GAE 7.1 ms, QEMU 6.2 ms):")
    for platform, r in results.items():
        print(f"  {platform:10s} mean={fmt(r.mean_coherence)} ms")
        print("    " + format_cdf_summary(r.coherence_cdf(), "coherence ms CDF"))


def cmd_fig6(quick: bool) -> None:
    kw = _durations(quick)
    results = measurement.run_fig6(**kw)
    print("Figure 6 — slack intervals (paper avg 17.2 ms; >30 ms tail from buffering):")
    for platform, r in results.items():
        print(f"  {platform:14s} mean={fmt(r.mean_slack)} ms")
        print("    " + format_cdf_summary(r.slack_cdf(), "slack ms CDF"))


def _print_appbench(results: Dict[str, appbench.AppBenchResult], paper_label: str) -> None:
    categories = list(next(iter(results.values())).category_fps)
    rows = []
    for name, r in results.items():
        rows.append([
            name,
            *(fmt(r.category_fps.get(c), 1) for c in categories),
            fmt(r.mean_fps, 1),
            str(r.runnable),
        ])
    print(format_table(["Emulator", *categories, "Mean", "Runnable"], rows))
    print(f"\nvSoC mean-FPS improvement over each (paper {paper_label}):")
    vsoc_mean = results["vSoC"].mean_fps
    for name, r in results.items():
        if name == "vSoC" or r.mean_fps <= 0:
            continue
        paper = PAPER_FIG10_IMPROVEMENT.get(name)
        print(f"  {name:12s} +{100 * (vsoc_mean / r.mean_fps - 1):5.0f}% "
              f"(paper: +{paper}%)" if paper else f"  {name}: n/a")
    print("\nRunnable counts (paper:",
          ", ".join(f"{k}={v}" for k, v in PAPER_RUNNABLE_EMERGING.items()) + ")")


def cmd_fig10(quick: bool) -> None:
    kw = _durations(quick)
    print("Figure 10 — FPS on the high-end PC:")
    results = appbench.run_fig10(HIGH_END_DESKTOP, **kw)
    _print_appbench(results, "§5.3 high-end")
    _print_latency(results, "Figure 13 — motion-to-photon latency (high-end)")


def cmd_fig11(quick: bool) -> None:
    kw = _durations(quick)
    if not quick:
        kw["duration_ms"] = 90_000.0  # let thermal throttling develop
    print("Figure 11 — FPS on the middle-end laptop (thermal effects active):")
    results = appbench.run_fig10(MIDDLE_END_LAPTOP, **kw)
    _print_appbench(results, "§5.3 middle-end")
    _print_latency(results, "Figure 14 — motion-to-photon latency (middle-end)")


def _print_latency(results: Dict[str, appbench.AppBenchResult], title: str) -> None:
    print(f"\n{title}:")
    rows = []
    for name, r in results.items():
        if not r.category_latency:
            continue
        rows.append([
            name,
            *(fmt(r.category_latency.get(c), 0) for c in appbench.LATENCY_CATEGORIES),
            fmt(r.mean_latency, 0),
        ])
    print(format_table(["Emulator", *appbench.LATENCY_CATEGORIES, "Mean ms"], rows))


def cmd_fig13(quick: bool) -> None:
    kw = _durations(quick)
    results = appbench.run_fig10(HIGH_END_DESKTOP, **kw)
    _print_latency(results, "Figure 13 — motion-to-photon latency (high-end)")


def cmd_fig14(quick: bool) -> None:
    kw = _durations(quick)
    results = appbench.run_fig10(MIDDLE_END_LAPTOP, **kw)
    _print_latency(results, "Figure 14 — motion-to-photon latency (middle-end)")


def cmd_fig12(quick: bool) -> None:
    kw = _durations(quick)
    result = breakdown.run_fig12(**kw)
    print("Figure 12 — FPS breakdown on the high-end PC:")
    rows = []
    for category, per_variant in result.category_fps.items():
        rows.append([category, *(fmt(per_variant.get(v), 1) for v in breakdown.VARIANTS)])
    print(format_table(["Category", *breakdown.VARIANTS], rows))
    print(f"\nAverage drop: no-prefetch {result.drop_percent('no-prefetch'):.0f}% "
          f"(paper: 30%, video 66%); "
          f"no-fence {result.drop_percent('no-fence'):.0f}% (paper: 11%)")


def cmd_fig16(quick: bool) -> None:
    duration = 8_000.0 if quick else 22_000.0
    off = breakdown.run_fig16(duration_ms=duration, prefetch=False)
    on = breakdown.run_fig16(duration_ms=duration, prefetch=True)
    print("Figure 16 — SVM access latency, UHD video, prefetch OFF "
          "(paper: blocks up to 40.54 ms):")
    print("  " + format_cdf_summary(off.cdf(), "prefetch-off ms"))
    print("  " + format_cdf_summary(on.cdf(), "prefetch-on  ms"))
    print(f"  max observed with write-invalidate: {off.maximum:.2f} ms")


def cmd_fig15(quick: bool) -> None:
    duration = 8_000.0 if quick else 15_000.0
    results = popular.run_fig15(duration_ms=duration)
    print("Figure 15 — FPS of the top-25 popular apps (high-end):")
    rows = [
        [name, fmt(r.mean_fps, 1), str(r.runnable)]
        for name, r in results.items()
    ]
    print(format_table(["Emulator", "Mean FPS", "Runnable"], rows))
    print("\nPairwise vSoC improvement (paper: 12%-49%):")
    for name in results:
        if name == "vSoC":
            continue
        gain = popular.pairwise_improvement(results, name)
        paper = PAPER_FIG15_IMPROVEMENT.get(name)
        print(f"  {name:12s} +{fmt(gain, 0)}% (paper: +{paper}%)")
    print("\nRunnable counts (paper:",
          ", ".join(f"{k}={v}" for k, v in PAPER_RUNNABLE_POPULAR.items()) + ")")


def cmd_popular_breakdown(quick: bool) -> None:
    duration = 8_000.0 if quick else 15_000.0
    results = breakdown.run_popular_breakdown(duration_ms=duration)
    print("§5.5 — popular-app ablations "
          "(paper: prefetch-off 20 apps / -6%; fence-off 24 apps / -8%):")
    for variant, r in results.items():
        print(f"  {variant:12s} apps-with-drops={r.apps_with_drops}/25 "
              f"avg-drop={r.average_drop_percent:.1f}%")


def cmd_pred(quick: bool) -> None:
    duration = 8_000.0 if quick else 15_000.0
    r = microbench.run_svm_microbench("vSoC", duration_ms=duration)
    print("§5.2 — prediction statistics:")
    print(f"  device-prediction accuracy: {fmt(r.prediction_accuracy and r.prediction_accuracy * 100, 2)}% "
          f"(paper: 99-100%)")
    print(f"  slack std error: {fmt(r.slack_std_error_ms)} ms (paper: 0.9 ms)")
    print(f"  prefetch-time std error: {fmt(r.prefetch_std_error_ms, 4)} ms (paper: 0.3 ms)")
    print(f"  framework memory overhead: {r.framework_overhead_bytes / MIB:.3f} MiB "
          f"(paper: <=3.1 MiB)")
    print(f"  engine CPU overhead: {100 * r.cpu_overhead_fraction:.3f}% of one core "
          f"(paper: <1%)")


def cmd_ablations(quick: bool) -> None:
    from repro.experiments import ablations

    print("Design-choice ablations (see DESIGN.md §5):")
    errors = ablations.sweep_alpha()
    print("  exponential-smoothing α sweep (paper picks 0.5):")
    for alpha, error in errors.items():
        marker = "  <- chosen" if alpha == 0.5 else ""
        print(f"    α={alpha:.1f}  slack RMS error {error:.3f} ms{marker}")
    comp = ablations.compensation_ablation()
    print(f"  compensation (Fig 8): reads {comp[True].mean_read_latency_ms:.2f} ms "
          f"with vs {comp[False].mean_read_latency_ms:.2f} ms without")
    susp = ablations.suspension_ablation()
    print(f"  3-failure suspension: {susp[3].wasted_prefetches} wasted prefetches "
          f"vs {susp[10**9].wasted_prefetches} without the policy")
    slack = ablations.sweep_buffering()
    print("  buffering → slack (Fig 6's >30 ms bucket): "
          + ", ".join(f"depth {d}: {s:.1f} ms" for d, s in slack.items()))


def cmd_density(quick: bool) -> None:
    from repro.experiments.density import run_density_comparison

    duration = 6_000.0 if quick else 12_000.0
    results = run_density_comparison(("vSoC", "GAE"), (1, 2, 4), duration_ms=duration)
    print("Instance density — mean per-instance UHD-video FPS on one host:")
    rows = [
        [name, *(fmt(r.fps_by_instances.get(n), 1) for n in (1, 2, 4))]
        for name, r in results.items()
    ]
    print(format_table(["Emulator", "x1", "x2", "x4"], rows))


def cmd_validate(quick: bool) -> None:
    from repro.experiments.validate import validate

    duration = 6_000.0 if quick else 10_000.0
    failures = [c for c in validate(duration_ms=duration) if not c.passed]
    if failures:
        raise SystemExit(1)


def cmd_sweeps(quick: bool) -> None:
    from repro.experiments.sweeps import (
        boundary_crossover,
        sweep_boundary_bandwidth,
        sweep_pcie_bandwidth,
    )

    duration = 5_000.0 if quick else 10_000.0
    print("Bandwidth sensitivity (extension experiments):")
    boundary = sweep_boundary_bandwidth(duration_ms=duration)
    print("  GAE UHD-video FPS vs boundary bandwidth:")
    for gbps, fps in boundary.items():
        print(f"    {gbps:5.1f} GB/s -> {fps:5.1f} FPS")
    crossover = boundary_crossover(duration_ms=duration)
    print(f"  crossover with vSoC: {crossover if crossover else 'never'} "
          "(the software decoder is the second bottleneck)")
    pcie = sweep_pcie_bandwidth(duration_ms=duration)
    print("  vSoC UHD-video FPS vs host-GPU DMA bandwidth:")
    for gbps, fps in pcie.items():
        print(f"    {gbps:5.1f} GB/s -> {fps:5.1f} FPS")


def cmd_chaos(quick: bool, seed: int = 0, fault_class: str = None,
              strict_audit: bool = False) -> int:
    from repro.errors import InvariantViolation
    from repro.experiments.chaos import run_fault_classes

    duration = 6_000.0 if quick else 10_000.0
    quick_flag = " --quick" if quick else ""
    strict_flag = " --strict-audit" if strict_audit else ""
    try:
        results = run_fault_classes(duration_ms=duration, seed=seed,
                                    only=fault_class,
                                    strict_audit=strict_audit)
    except InvariantViolation as err:
        class_flag = f" --fault-class {fault_class}" if fault_class else ""
        print(f"FAIL: invariant {err.invariant!r} violated under strict "
              f"audit: {err}")
        print(f"REPRODUCE: python -m repro.experiments chaos "
              f"--seed {seed}{class_flag}{quick_flag}{strict_flag}")
        return 1
    print("Chaos harness — UHD video on vSoC per fault class:")
    rows = []
    for label, r in results.items():
        rows.append([
            label,
            f"{r.fps:.1f}",
            f"{r.steady_fps:.1f}",
            str(r.degrades),
            str(r.restores),
            f"{r.time_degraded_ms:.0f}",
            str(r.retries),
        ])
    print(format_table(
        ["Fault class", "FPS", "Steady FPS", "Degr", "Rest", "DegrMs", "Retries"],
        rows,
    ))
    baseline = results["fault-free"]
    if "full-chaos" in results:
        chaos = results["full-chaos"]
        print(f"\nFull-chaos steady-state FPS {chaos.steady_fps:.1f} vs "
              f"fault-free {baseline.steady_fps:.1f} "
              f"(bar: within 2x after fault clearance)")
        print(f"Injected: {chaos.injected}")
    # The acceptance bar, per class: steady-state FPS after the faults
    # clear must be within 2x of the fault-free baseline. A run whose
    # faults extend past the end of the (quick) duration has no steady
    # window to judge and is skipped. Every failing run prints the
    # one-line command that replays it exactly.
    failing = []
    for label, r in results.items():
        if r.duration_ms - r.steady_after_ms <= 0:
            continue
        ok = (r.steady_fps > 0.0 if label == "fault-free"
              else r.steady_fps * 2.0 >= baseline.steady_fps)
        if not ok:
            failing.append(label)
    for label in failing:
        print(f"FAIL {label}: steady FPS {results[label].steady_fps:.1f} "
              f"vs baseline {baseline.steady_fps:.1f}")
        print(f"REPRODUCE: python -m repro.experiments chaos "
              f"--seed {seed} --fault-class {label}{quick_flag}{strict_flag}")
    return 1 if failing else 0


def cmd_fuzz(max_samples: int, seed: int, out_dir: str, jobs=None,
             cache: bool = True, quick: bool = False,
             replay_path: str = None, shrink: bool = True) -> int:
    """Property-based scenario fuzzing (or reproducer replay).

    Samples schema-valid scenario documents from a seeded RNG, runs each
    through the experiment engine under the strict invariant auditor plus
    the crash-recovery bar, shrinks every failure to a minimal reproducer
    file, and prints one REPRODUCE line per finding. ``--replay PATH``
    re-runs one reproducer (or bare scenario) file instead of sampling.
    Exit code 1 iff any sample (or the replayed file) fails.
    """
    from repro.scenario import load_reproducer, run_fuzz, scenario_digest

    documents = None
    if replay_path is not None:
        document, stored = load_reproducer(replay_path)
        documents = [document]
        print(f"Replaying {replay_path} "
              f"(scenario sha256 {scenario_digest(document)[:12]}...)")
        if stored is not None:
            expect = stored.get("invariant") or stored.get("error") or ""
            print(f"  recorded finding: {stored.get('status')} {expect}".rstrip())
        shrink = False  # a reproducer is already minimal; just re-run it

    report = run_fuzz(
        max_samples=max_samples,
        seed=seed,
        out_dir=out_dir,
        strict_audit=True,
        jobs=jobs,
        cache=cache,
        quick=quick,
        documents=documents,
        shrink=shrink,
    )

    print(f"Fuzz campaign: {report['samples']} samples, base seed {seed}, "
          f"strict audit on")
    print(f"  ok={report['ok']} findings={len(report['findings'])} "
          f"executed={report['executed']} cache-hits={report['cache_hits']} "
          f"wall={report['wall_s']:.1f}s")
    quick_flag = " --quick" if quick else ""
    for finding in report["findings"]:
        outcome = finding["outcome"]
        what = outcome.get("invariant") or outcome.get("error") or ""
        print(f"\nFINDING [{outcome['status']}] {what}: "
              f"{outcome.get('message', '')}")
        print(f"  fuzz seed {finding['fuzz_seed']}, shrunk with "
              f"{finding['shrink_checks']} re-runs -> {finding['reproducer']}")
        print(f"  scenario sha256 {finding['scenario_sha256']}")
        print(f"REPRODUCE: python -m repro.experiments fuzz "
              f"--replay {finding['reproducer']}"
              f"  # sha256 {finding['scenario_sha256'][:12]}")
    if not report["findings"]:
        if replay_path is not None:
            print("  replay ran clean — the finding did not reproduce")
        else:
            print(f"  all samples clean; replay the campaign with:")
            print(f"  REPRODUCE: python -m repro.experiments fuzz "
                  f"--seed {seed} --max-samples {max_samples}{quick_flag}")
    return 1 if report["findings"] else 0


COMMANDS = {
    "table2": cmd_table2,
    "chaos": cmd_chaos,
    "ablations": cmd_ablations,
    "density": cmd_density,
    "sweeps": cmd_sweeps,
    "validate": cmd_validate,
    "fig4": cmd_fig4,
    "fig5": cmd_fig5,
    "fig6": cmd_fig6,
    "fig10": cmd_fig10,
    "fig11": cmd_fig11,
    "fig12": cmd_fig12,
    "fig13": cmd_fig13,
    "fig14": cmd_fig14,
    "fig15": cmd_fig15,
    "fig16": cmd_fig16,
    "popular-breakdown": cmd_popular_breakdown,
    "pred": cmd_pred,
}


def main(argv=None) -> int:
    """CLI entry point: regenerate one experiment (or ``all``)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the vSoC paper's tables and figures.",
    )
    parser.add_argument("experiment",
                        choices=[*COMMANDS, "all", "observe", "bench",
                                 "dashboard", "recover", "fleetserve",
                                 "flightdeck", "fuzz", "explain"])
    parser.add_argument("--quick", action="store_true",
                        help="shorter runs, fewer apps (same shapes)")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="fan engine-backed sweeps over N worker processes")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the on-disk run cache (.repro-cache/)")
    parser.add_argument("--no-fast-forward", action="store_true",
                        help="disable steady-state fast-forward (results are "
                             "bit-identical either way; use to time the "
                             "event-by-event path)")
    parser.add_argument("--history", metavar="PATH", default=None,
                        help="bench-history JSONL for the regression sentinel "
                             "(default BENCH_history.jsonl; bench/dashboard)")
    bench_group = parser.add_argument_group("bench options")
    bench_group.add_argument("--out", metavar="PATH", default=None,
                             help="output path (bench: BENCH_engine.json; "
                                  "dashboard: report.html)")
    bench_group.add_argument("--check", action="store_true",
                             help="exit nonzero when a metric regresses "
                                  "beyond tolerance vs the EWMA baseline")
    bench_group.add_argument("--tolerance", type=float, default=None,
                             metavar="FRAC",
                             help="relative regression tolerance "
                                  "(default 0.25)")
    dashboard_group = parser.add_argument_group("dashboard options")
    dashboard_group.add_argument("--snapshot", metavar="PATH", default=None,
                                 help="also write the canonical fleet "
                                      "aggregate JSON here")
    observe_group = parser.add_argument_group("observe options")
    observe_group.add_argument("--app", default="ar",
                               help="workload to observe (ar/video/camera/livestream)")
    observe_group.add_argument("--emulator", default="vSoC",
                               help="emulator to observe (default vSoC)")
    observe_group.add_argument("--export", metavar="PATH", default=None,
                               help="write a Chrome/Perfetto trace JSON here")
    observe_group.add_argument("--metrics", metavar="PATH", default=None,
                               help="write the metrics/self-profile JSON here")
    observe_group.add_argument("--duration", type=float, default=None,
                               help="simulated ms to observe (default 8000)")
    observe_group.add_argument("--seed", type=int, default=0,
                               help="run seed (default 0)")
    observe_group.add_argument("--include-tracelog", action="store_true",
                               help="also digest legacy TraceLog records into "
                                    "the exported trace")
    observe_group.add_argument("--reservoir", type=int, default=None,
                               metavar="N",
                               help="per-instrument sample retention (gauge "
                                    "timelines / histogram reservoirs; "
                                    "default 512)")
    observe_group.add_argument("--max-spans", type=int, default=None,
                               metavar="N",
                               help="bounded ring mode: keep only the newest "
                                    "N spans/instants (evictions are counted "
                                    "and surfaced; attribution refuses "
                                    "truncated traces)")
    explain_group = parser.add_argument_group("explain options")
    explain_group.add_argument("--against", metavar="EMULATOR", default=None,
                               help="diff mode: run EMULATOR on the same app "
                                    "and localize where it spends more than "
                                    "--emulator (case-insensitive, "
                                    "qemu_kvm == QEMU-KVM)")
    explain_group.add_argument("--deadline", type=float, default=None,
                               metavar="MS",
                               help="frame-deadline SLO to grade against "
                                    "(default 50 ms)")
    recover_group = parser.add_argument_group("recover options")
    recover_group.add_argument("--report", metavar="PATH", default=None,
                               help="write the recovery/audit JSON report here "
                                    "(recover/fleetserve)")
    chaos_group = parser.add_argument_group("chaos options")
    chaos_group.add_argument("--fault-class", metavar="LABEL", default=None,
                             help="run only this fault class (plus the "
                                  "fault-free baseline)")
    chaos_group.add_argument("--strict-audit", action="store_true",
                             help="arm the invariant auditor in strict mode: "
                                  "the first violation fails the run with a "
                                  "REPRODUCE line (chaos/recover; fuzz is "
                                  "always strict)")
    fuzz_group = parser.add_argument_group("fuzz options")
    fuzz_group.add_argument("--max-samples", type=int, default=50, metavar="N",
                            help="scenario samples to draw (default 50)")
    fuzz_group.add_argument("--fuzz-dir", metavar="DIR",
                            default="fuzz-reproducers",
                            help="where shrunken reproducer scenario files "
                                 "land (default fuzz-reproducers/)")
    fuzz_group.add_argument("--replay", metavar="PATH", default=None,
                            help="re-run one reproducer (or bare scenario) "
                                 "file instead of sampling")
    fuzz_group.add_argument("--no-shrink", action="store_true",
                            help="report findings without delta-debugging "
                                 "them to minimal reproducers")
    fleet_group = parser.add_argument_group("fleetserve options")
    fleet_group.add_argument("--workers", type=int, default=None, metavar="N",
                             help="override the simulation-worker pool size")
    fleet_group.add_argument("--crashes", type=int, default=None, metavar="N",
                             help="override the injected worker-crash count")
    fleet_group.add_argument("--live", metavar="DIR", default=None,
                             help="record the run: streaming event log, "
                                  "live-refreshing dashboard, and "
                                  "Chrome/Perfetto trace land in DIR")
    deck_group = parser.add_argument_group("flightdeck options")
    deck_group.add_argument("--events", metavar="PATH", default=None,
                            help="recorded event log (JSONL) to replay "
                                 "into the dashboard")
    args = parser.parse_args(argv)
    from repro.experiments import engine
    from repro.sim import fastforward

    engine.set_default_jobs(args.jobs)
    engine.set_cache_default(not args.no_cache)
    prev_fast_forward = fastforward.enabled_default()
    fastforward.set_enabled(not args.no_fast_forward)
    if args.experiment in ("chaos", "recover", "fuzz"):
        # Fault-plan runs must execute every event: injected faults and
        # recovery flows are exactly the aperiodic behaviour the skip
        # detector exists to avoid, and the injector adds a per-simulator
        # veto besides. Forcing the process default off makes the
        # guarantee independent of any run_app plumbing.
        fastforward.set_enabled(False)
    try:
        return _dispatch(args, parser)
    finally:
        # main() is also called programmatically (tests, embedding); the
        # per-command flag must not leak into the caller's process.
        fastforward.set_enabled(prev_fast_forward)


def _dispatch(args, parser) -> int:
    if args.experiment == "bench":
        from repro.experiments.bench import cmd_bench

        return cmd_bench(jobs=args.jobs,
                         out_path=args.out or "BENCH_engine.json",
                         quick=args.quick, cache=not args.no_cache,
                         check=args.check, history_path=args.history,
                         tolerance=args.tolerance)
    if args.experiment == "dashboard":
        from repro.experiments.dashboard import cmd_dashboard

        return cmd_dashboard(out_path=args.out or "report.html",
                             snapshot_path=args.snapshot,
                             history_path=args.history,
                             quick=args.quick, jobs=args.jobs,
                             cache=not args.no_cache,
                             seed=args.seed)
    if args.experiment == "observe":
        from repro.experiments.observe import DEFAULT_DURATION_MS, cmd_observe

        duration = args.duration
        if duration is None:
            duration = 4_000.0 if args.quick else DEFAULT_DURATION_MS
        return cmd_observe(
            app=args.app,
            emulator=args.emulator,
            duration_ms=duration,
            export_path=args.export,
            metrics_path=args.metrics,
            seed=args.seed,
            include_tracelog=args.include_tracelog,
            reservoir=args.reservoir,
            max_spans=args.max_spans,
        )
    if args.experiment == "explain":
        from repro.experiments.explain import DEFAULT_DURATION_MS, cmd_explain

        duration = args.duration
        if duration is None:
            duration = 4_000.0 if args.quick else DEFAULT_DURATION_MS
        return cmd_explain(
            app=args.app,
            emulator=args.emulator,
            against=args.against,
            duration_ms=duration,
            seed=args.seed,
            out_path=args.out,
            deadline_ms=args.deadline,
            cache=not args.no_cache,
        )
    if args.experiment == "recover":
        from repro.experiments.recover import cmd_recover

        return cmd_recover(
            quick=args.quick, report_path=args.report, seed=args.seed,
            strict_audit=args.strict_audit,
        )
    if args.experiment == "fleetserve":
        from repro.experiments.fleetserve import cmd_fleetserve

        return cmd_fleetserve(
            quick=args.quick, seed=args.seed, out_path=args.out,
            report_path=args.report, crashes=args.crashes,
            workers=args.workers, live_dir=args.live,
        )
    if args.experiment == "flightdeck":
        from repro.experiments.fleetserve import cmd_flightdeck

        if not args.events:
            parser.error("flightdeck needs --events PATH (a recorded "
                         "events.jsonl)")
        return cmd_flightdeck(events_path=args.events, out_path=args.out)
    if args.experiment == "chaos":
        return cmd_chaos(args.quick, seed=args.seed,
                         fault_class=args.fault_class,
                         strict_audit=args.strict_audit)
    if args.experiment == "fuzz":
        return cmd_fuzz(max_samples=args.max_samples, seed=args.seed,
                        out_dir=args.fuzz_dir, jobs=args.jobs,
                        cache=not args.no_cache, quick=args.quick,
                        replay_path=args.replay,
                        shrink=not args.no_shrink)
    if args.experiment == "all":
        for name, command in COMMANDS.items():
            print(f"\n{'=' * 72}\n{name}\n{'=' * 72}")
            command(args.quick)
    else:
        COMMANDS[args.experiment](args.quick)
    return 0


if __name__ == "__main__":
    sys.exit(main())
