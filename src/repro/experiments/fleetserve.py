"""The ``fleetserve`` demo: a supervised fleet serving 10k+ sessions.

Drives :class:`~repro.fleet.FleetService` through a seeded synthetic day
of traffic — diurnal base load, a flash crowd, and a crash storm that
kills workers mid-run — then prints the serving ledger and renders the
live fleet state into the PR 5 dashboard. The acceptance bars:

* the full-size run sustains **≥ 10 000 concurrent sessions**;
* every injected worker crash drains with **zero lost sessions**
  (``recovery.lost_sessions == 0`` and ``stats.lost == 0``);
* session accounting balances exactly
  (offered = admitted + shed; admitted = completed + lost + active).

Every run is a pure function of ``--seed``; a failing run prints the
one-line seeded reproducer command.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

from repro.fleet import FleetService, FlashCrowd, crash_storm_plan, generate_trace

#: Demo sizes: (workers, capacity, horizon ms, arrivals/s, mean session ms,
#: crashes, min peak concurrency the run must sustain).
FULL_SHAPE = dict(
    workers=24, capacity=600.0, horizon_ms=30_000.0, rate_per_s=900.0,
    mean_session_ms=14_000.0, crashes=3, min_peak=10_000,
)
QUICK_SHAPE = dict(
    workers=6, capacity=200.0, horizon_ms=10_000.0, rate_per_s=60.0,
    mean_session_ms=4_000.0, crashes=1, min_peak=150,
)


def run_fleetserve(
    seed: int = 0,
    quick: bool = False,
    crashes: Optional[int] = None,
    workers: Optional[int] = None,
) -> Dict[str, Any]:
    """One seeded fleet run; returns the service's full report."""
    shape = dict(QUICK_SHAPE if quick else FULL_SHAPE)
    if crashes is not None:
        shape["crashes"] = crashes
    if workers is not None:
        shape["workers"] = workers
    trace = generate_trace(
        seed=seed,
        horizon_ms=shape["horizon_ms"],
        base_rate_per_s=shape["rate_per_s"],
        mean_session_ms=shape["mean_session_ms"],
        flash_crowds=(FlashCrowd(
            peak_ms=shape["horizon_ms"] * 0.6,
            amplitude=1.6,
            sigma_ms=shape["horizon_ms"] * 0.08,
        ),),
    )
    worker_names = [f"w{i:02d}" for i in range(int(shape["workers"]))]
    plan = crash_storm_plan(
        worker_names,
        start_ms=shape["horizon_ms"] * 0.3,
        crashes=int(shape["crashes"]),
        downtime_ms=800.0,
        seed=seed,
        include_hang=not quick,
        include_slow_heartbeat=not quick,
    )
    service = FleetService(
        n_workers=int(shape["workers"]),
        worker_capacity=float(shape["capacity"]),
        initial_window=1_024.0,
        max_window=16_384.0,
    )
    service.serve(trace, plan=plan)
    report = service.report()
    report["shape"] = {k: shape[k] for k in sorted(shape)}
    report["seed"] = seed
    return report


def _reproducer(seed: int, quick: bool) -> str:
    quick_flag = " --quick" if quick else ""
    return f"REPRODUCE: python -m repro.experiments fleetserve --seed {seed}{quick_flag}"


def check_fleetserve(report: Dict[str, Any]) -> list:
    """The acceptance bars; returns the list of failures (empty = pass)."""
    summary = report["summary"]
    stats = summary["stats"]
    recovery = summary["recovery"]
    shape = report["shape"]
    failures = []
    if stats["lost"] != 0 or recovery["lost_sessions"] != 0:
        failures.append(
            f"lost sessions: stats.lost={stats['lost']} "
            f"recovery.lost_sessions={recovery['lost_sessions']} (must be 0)"
        )
    if not summary["balanced"]:
        failures.append("session accounting does not balance")
    if stats["peak_concurrent"] < shape["min_peak"]:
        failures.append(
            f"peak concurrency {stats['peak_concurrent']} below the "
            f"{shape['min_peak']} bar"
        )
    if recovery["crashes"] < shape["crashes"]:
        failures.append(
            f"only {recovery['crashes']} of {shape['crashes']} injected "
            f"crashes were detected"
        )
    if recovery["crashes"] and recovery["drains"] == 0:
        failures.append("crashes were detected but nothing was drained")
    return failures


def cmd_fleetserve(
    quick: bool = False,
    seed: int = 0,
    out_path: Optional[str] = None,
    report_path: Optional[str] = None,
    crashes: Optional[int] = None,
    workers: Optional[int] = None,
) -> int:
    report = run_fleetserve(
        seed=seed, quick=quick, crashes=crashes, workers=workers
    )
    summary = report["summary"]
    stats = summary["stats"]
    recovery = summary["recovery"]
    print(f"Fleet session service — seed {seed}"
          f"{' (quick)' if quick else ''}:")
    print(f"  trace: {summary['trace']['sessions']} sessions over "
          f"{summary['trace']['horizon_ms'] / 1_000:.0f}s, offered peak "
          f"{summary['trace']['peak_offered_concurrency']}")
    print(f"  admitted {stats['admitted']}/{stats['offered']} "
          f"(shed {stats['shed']}: window {stats['shed_flow']}, "
          f"capacity {stats['shed_capacity']}, "
          f"degraded {stats['shed_degraded']})")
    print(f"  peak concurrent {stats['peak_concurrent']}, "
          f"completed {stats['completed']}, "
          f"active at end {summary['active_at_end']}")
    print(f"  crashes {recovery['crashes']}, drains {recovery['drains']}, "
          f"evacuated {recovery['evacuated_sessions']}, "
          f"lost {recovery['lost_sessions']}, "
          f"restarts {recovery['worker_restarts']}, "
          f"retired {recovery['retired_workers']}")
    print(f"  migrations {stats['migrations']} "
          f"(rebalance {stats['rebalances']}, "
          f"evacuation {stats['evacuations']})")
    if report_path:
        with open(report_path, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=1, sort_keys=True)
            fh.write("\n")
        print(f"  report JSON -> {report_path}")
    if out_path:
        from repro.obs.dashboard import render_dashboard, write_dashboard

        html = render_dashboard(
            report["aggregate"],
            title=f"vSoC fleet session service (seed {seed})",
        )
        write_dashboard(out_path, html)
        print(f"  dashboard -> {out_path}")
    failures = check_fleetserve(report)
    if failures:
        print("\nFAIL:")
        for failure in failures:
            print(f"  - {failure}")
        print(_reproducer(seed, quick))
        return 1
    print("\nPASS: zero lost sessions, accounting balanced, "
          f"peak {stats['peak_concurrent']} >= {report['shape']['min_peak']}")
    return 0
