"""The ``fleetserve`` demo: a supervised fleet serving 10k+ sessions.

Drives :class:`~repro.fleet.FleetService` through a seeded synthetic day
of traffic — diurnal base load, a flash crowd, and a crash storm that
kills workers mid-run — then prints the serving ledger and renders the
live fleet state into the PR 5 dashboard. The acceptance bars:

* the full-size run sustains **≥ 10 000 concurrent sessions**;
* every injected worker crash drains with **zero lost sessions**
  (``recovery.lost_sessions == 0`` and ``stats.lost == 0``);
* session accounting balances exactly
  (offered = admitted + shed; admitted = completed + lost + active).

Every run is a pure function of ``--seed``; a failing run prints the
one-line seeded reproducer command.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Optional

from repro.fleet import (
    FleetService,
    FlashCrowd,
    FlightRecorder,
    crash_storm_plan,
    generate_trace,
)
from repro.obs.events import EventLog

#: Demo sizes: (workers, capacity, horizon ms, arrivals/s, mean session ms,
#: crashes, min peak concurrency the run must sustain).
FULL_SHAPE = dict(
    workers=24, capacity=600.0, horizon_ms=30_000.0, rate_per_s=900.0,
    mean_session_ms=14_000.0, crashes=3, min_peak=10_000,
)
QUICK_SHAPE = dict(
    workers=6, capacity=200.0, horizon_ms=10_000.0, rate_per_s=60.0,
    mean_session_ms=4_000.0, crashes=1, min_peak=150,
)


def run_fleetserve(
    seed: int = 0,
    quick: bool = False,
    crashes: Optional[int] = None,
    workers: Optional[int] = None,
    live_dir: Optional[str] = None,
) -> Dict[str, Any]:
    """One seeded fleet run; returns the service's full report.

    ``live_dir`` turns on the flight recorder: a streaming event log
    (``events.jsonl``), a live-refreshing dashboard (``fleet.html``)
    re-rendered from that log on a virtual-time cadence mid-run, and a
    Chrome/Perfetto trace (``trace.json``) land in the directory. The
    recorder only reads the virtual clock, so every number in the report
    is byte-identical with and without it (the tests prove this).
    """
    shape = dict(QUICK_SHAPE if quick else FULL_SHAPE)
    if crashes is not None:
        shape["crashes"] = crashes
    if workers is not None:
        shape["workers"] = workers
    trace = generate_trace(
        seed=seed,
        horizon_ms=shape["horizon_ms"],
        base_rate_per_s=shape["rate_per_s"],
        mean_session_ms=shape["mean_session_ms"],
        flash_crowds=(FlashCrowd(
            peak_ms=shape["horizon_ms"] * 0.6,
            amplitude=1.6,
            sigma_ms=shape["horizon_ms"] * 0.08,
        ),),
    )
    worker_names = [f"w{i:02d}" for i in range(int(shape["workers"]))]
    plan = crash_storm_plan(
        worker_names,
        start_ms=shape["horizon_ms"] * 0.3,
        crashes=int(shape["crashes"]),
        downtime_ms=800.0,
        seed=seed,
        include_hang=not quick,
        include_slow_heartbeat=not quick,
    )
    service = FleetService(
        n_workers=int(shape["workers"]),
        worker_capacity=float(shape["capacity"]),
        initial_window=1_024.0,
        max_window=16_384.0,
    )
    recorder = None
    if live_dir is not None:
        from repro.obs.dashboard import write_dashboard
        from repro.obs.flightdeck import render_flight_dashboard

        os.makedirs(live_dir, exist_ok=True)
        events_path = os.path.join(live_dir, "events.jsonl")
        html_path = os.path.join(live_dir, "fleet.html")
        recorder = FlightRecorder(
            service.clock,
            events=EventLog(service.clock, path=events_path),
        )

        def _render_live(rec: FlightRecorder) -> None:
            # Mid-run incremental render from the events so far; the
            # refresh header makes a watching browser re-read the file.
            write_dashboard(html_path, render_flight_dashboard(
                rec.events.records, refresh_s=2.0,
            ))

        recorder.on_cadence = _render_live
        service.attach_recorder(recorder)
    try:
        service.serve(trace, plan=plan)
    finally:
        if recorder is not None:
            recorder.close()
    report = service.report()
    report["shape"] = {k: shape[k] for k in sorted(shape)}
    report["seed"] = seed
    if recorder is not None:
        # Final render drops the refresh header — byte-identical to a
        # flightdeck replay of the completed event log.
        write_dashboard(html_path, render_flight_dashboard(
            recorder.events.records,
        ))
        trace_path = os.path.join(live_dir, "trace.json")
        with open(trace_path, "w", encoding="utf-8") as fh:
            json.dump(recorder.export_trace(), fh, sort_keys=True)
            fh.write("\n")
        report["artifacts"] = {
            "events": events_path,
            "dashboard": html_path,
            "trace": trace_path,
        }
    return report


def _reproducer(
    seed: int,
    quick: bool,
    crashes: Optional[int] = None,
    workers: Optional[int] = None,
    live_dir: Optional[str] = None,
) -> str:
    """The one-line seeded command that replays this exact run."""
    cmd = f"REPRODUCE: python -m repro.experiments fleetserve --seed {seed}"
    if quick:
        cmd += " --quick"
    if workers is not None:
        cmd += f" --workers {workers}"
    if crashes is not None:
        cmd += f" --crashes {crashes}"
    if live_dir is not None:
        cmd += f" --live {live_dir}"
    return cmd


def check_fleetserve(report: Dict[str, Any]) -> list:
    """The acceptance bars; returns the list of failures (empty = pass)."""
    summary = report["summary"]
    stats = summary["stats"]
    recovery = summary["recovery"]
    shape = report["shape"]
    failures = []
    if stats["lost"] != 0 or recovery["lost_sessions"] != 0:
        failures.append(
            f"lost sessions: stats.lost={stats['lost']} "
            f"recovery.lost_sessions={recovery['lost_sessions']} (must be 0)"
        )
    if not summary["balanced"]:
        failures.append("session accounting does not balance")
    if stats["peak_concurrent"] < shape["min_peak"]:
        failures.append(
            f"peak concurrency {stats['peak_concurrent']} below the "
            f"{shape['min_peak']} bar"
        )
    if recovery["crashes"] < shape["crashes"]:
        failures.append(
            f"only {recovery['crashes']} of {shape['crashes']} injected "
            f"crashes were detected"
        )
    if recovery["crashes"] and recovery["drains"] == 0:
        failures.append("crashes were detected but nothing was drained")
    return failures


def cmd_fleetserve(
    quick: bool = False,
    seed: int = 0,
    out_path: Optional[str] = None,
    report_path: Optional[str] = None,
    crashes: Optional[int] = None,
    workers: Optional[int] = None,
    live_dir: Optional[str] = None,
) -> int:
    reproduce = _reproducer(seed, quick, crashes, workers, live_dir)
    try:
        report = run_fleetserve(
            seed=seed, quick=quick, crashes=crashes, workers=workers,
            live_dir=live_dir,
        )
    except Exception:
        # A crashed run is replayable from the log alone: the command
        # below regenerates the trace, the fault plan, and the failure.
        print(reproduce)
        raise
    summary = report["summary"]
    stats = summary["stats"]
    recovery = summary["recovery"]
    print(f"Fleet session service — seed {seed}"
          f"{' (quick)' if quick else ''}:")
    print(f"  trace: {summary['trace']['sessions']} sessions over "
          f"{summary['trace']['horizon_ms'] / 1_000:.0f}s, offered peak "
          f"{summary['trace']['peak_offered_concurrency']}")
    print(f"  admitted {stats['admitted']}/{stats['offered']} "
          f"(shed {stats['shed']}: window {stats['shed_flow']}, "
          f"capacity {stats['shed_capacity']}, "
          f"degraded {stats['shed_degraded']})")
    print(f"  peak concurrent {stats['peak_concurrent']}, "
          f"completed {stats['completed']}, "
          f"active at end {summary['active_at_end']}")
    print(f"  crashes {recovery['crashes']}, drains {recovery['drains']}, "
          f"evacuated {recovery['evacuated_sessions']}, "
          f"lost {recovery['lost_sessions']}, "
          f"restarts {recovery['worker_restarts']}, "
          f"retired {recovery['retired_workers']}")
    print(f"  migrations {stats['migrations']} "
          f"(rebalance {stats['rebalances']}, "
          f"evacuation {stats['evacuations']})")
    if report_path:
        with open(report_path, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=1, sort_keys=True)
            fh.write("\n")
        print(f"  report JSON -> {report_path}")
    if "recorder" in report:
        rec = report["recorder"]
        print(f"  flight recorder: {rec['events']} events, "
              f"{rec['spans']} spans over {rec['flows']} flows "
              f"({rec['dropped_spans']} dropped)")
        for label, path in sorted(report.get("artifacts", {}).items()):
            print(f"  {label} -> {path}")
    if out_path:
        from repro.obs.dashboard import render_dashboard, write_dashboard

        html = render_dashboard(
            report["aggregate"],
            title=f"vSoC fleet session service (seed {seed})",
        )
        write_dashboard(out_path, html)
        print(f"  dashboard -> {out_path}")
    failures = check_fleetserve(report)
    if failures:
        print("\nFAIL:")
        for failure in failures:
            print(f"  - {failure}")
        print(reproduce)
        return 1
    print("\nPASS: zero lost sessions, accounting balanced, "
          f"peak {stats['peak_concurrent']} >= {report['shape']['min_peak']}")
    return 0


def cmd_flightdeck(
    events_path: str,
    out_path: Optional[str] = None,
) -> int:
    """Replay a recorded fleet event log into the dashboard.

    Validates the log first; a complete log replays to the exact bytes
    the live run's final render produced.
    """
    from repro.obs.dashboard import write_dashboard
    from repro.obs.events import read_event_log, validate_fleet_events
    from repro.obs.flightdeck import render_flight_dashboard

    records = read_event_log(events_path)
    problems = validate_fleet_events(records)
    print(f"Flightdeck replay of {events_path}: {len(records)} events")
    if problems:
        print("FAIL: event log is not schema-valid:")
        for problem in problems[:20]:
            print(f"  - {problem}")
        return 1
    kinds: Dict[str, int] = {}
    for record in records:
        kinds[record["kind"]] = kinds.get(record["kind"], 0) + 1
    for kind in sorted(kinds):
        print(f"  {kind}: {kinds[kind]}")
    html = render_flight_dashboard(records)
    out_path = out_path or "flightdeck.html"
    write_dashboard(out_path, html)
    print(f"  dashboard -> {out_path}")
    return 0
