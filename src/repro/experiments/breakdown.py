"""Performance breakdown (§5.4): Figures 12 and 16, plus §5.5's ablations.

* **Fig 12** — FPS per emerging category for vSoC, vSoC without the
  prefetch engine (write-invalidate coherence), and vSoC without virtual
  fences (atomic ordering). Paper: −30% average / −66% video for the
  prefetch ablation; −11% for the fence ablation.
* **Fig 16** — CDF of SVM access latency with the prefetch engine off
  while playing UHD video: the write-invalidate protocol blocks the render
  thread (paper: up to 40.54 ms), frames miss presentation deadlines and
  are discarded.
* **§5.5** — the same two ablations over the top-25 popular apps: the
  fraction of apps losing FPS and the average loss.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.apps.catalog import EMERGING_CATEGORIES, emerging_apps, popular_apps
from repro.emulators import make_vsoc
from repro.experiments.runner import DEFAULT_DURATION_MS, run_app
from repro.hw.machine import HIGH_END_DESKTOP, MachineSpec
from repro.metrics.stats import cdf_points

#: The three Fig 12 variants, in bar order.
VARIANTS: Dict[str, Optional[Callable]] = {
    "vSoC": None,  # default factory
    "no-prefetch": functools.partial(make_vsoc, prefetch=False),
    "no-fence": functools.partial(make_vsoc, fences=False),
}


@dataclass
class BreakdownResult:
    """Fig 12: category FPS per variant."""

    machine: str
    category_fps: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def variant_mean(self, variant: str) -> float:
        values = [fps[variant] for fps in self.category_fps.values() if variant in fps]
        return sum(values) / len(values) if values else 0.0

    def drop_percent(self, variant: str) -> float:
        """Average FPS drop of a variant relative to full vSoC."""
        full = self.variant_mean("vSoC")
        if full <= 0:
            return 0.0
        return 100.0 * (1.0 - self.variant_mean(variant) / full)


def run_fig12(
    machine_spec: MachineSpec = HIGH_END_DESKTOP,
    duration_ms: float = DEFAULT_DURATION_MS,
    apps_per_category: int = 10,
    seed: int = 0,
) -> BreakdownResult:
    """The §5.4 ablation sweep over the emerging apps."""
    result = BreakdownResult(machine=machine_spec.name)
    for category in EMERGING_CATEGORIES:
        result.category_fps[category] = {}
    for variant, factory in VARIANTS.items():
        sums: Dict[str, List[float]] = {c: [] for c in EMERGING_CATEGORIES}
        for app in emerging_apps(seed=seed, per_category=apps_per_category):
            run = run_app(app, "vSoC", machine_spec, duration_ms, seed=seed,
                          factory=factory)
            if run.result.ran:
                sums[app.category].append(run.result.fps)
        for category, values in sums.items():
            if values:
                result.category_fps[category][variant] = sum(values) / len(values)
    return result


@dataclass
class AccessLatencyResult:
    """Fig 16: SVM access latency distribution with prefetch off."""

    samples: List[float]

    def cdf(self) -> List[Tuple[float, float]]:
        return cdf_points(self.samples)

    @property
    def mean(self) -> float:
        return sum(self.samples) / len(self.samples) if self.samples else 0.0

    @property
    def maximum(self) -> float:
        return max(self.samples) if self.samples else 0.0


def run_fig16(
    machine_spec: MachineSpec = HIGH_END_DESKTOP,
    duration_ms: float = DEFAULT_DURATION_MS,
    seed: int = 0,
    prefetch: bool = False,
) -> AccessLatencyResult:
    """Access-latency CDF on UHD video with the prefetch engine toggled.

    ``prefetch=False`` is the paper's Fig 16 configuration (write-
    invalidate); pass ``True`` to see the healthy baseline for contrast.
    """
    from repro.apps.video import UhdVideoApp

    factory = functools.partial(make_vsoc, prefetch=prefetch)
    run = run_app(UhdVideoApp(), "vSoC", machine_spec, duration_ms, seed=seed,
                  factory=factory)
    samples = run.stats.access_latencies() if run.stats is not None else []
    return AccessLatencyResult(samples=samples)


@dataclass
class PopularBreakdownResult:
    """§5.5's popular-app ablation numbers."""

    variant: str
    per_app_fps: Dict[str, float]
    baseline_fps: Dict[str, float]

    @property
    def apps_with_drops(self) -> int:
        """Apps losing more than half an FPS versus full vSoC."""
        return sum(
            1
            for name, fps in self.per_app_fps.items()
            if self.baseline_fps.get(name, 0.0) - fps > 0.5
        )

    @property
    def average_drop_percent(self) -> float:
        drops = []
        for name, fps in self.per_app_fps.items():
            base = self.baseline_fps.get(name)
            if base:
                drops.append(100.0 * (1.0 - fps / base))
        return sum(drops) / len(drops) if drops else 0.0


def run_popular_breakdown(
    machine_spec: MachineSpec = HIGH_END_DESKTOP,
    duration_ms: float = DEFAULT_DURATION_MS,
    seed: int = 0,
) -> Dict[str, PopularBreakdownResult]:
    """§5.5: both ablations over the top-25 popular apps."""
    fps_by_variant: Dict[str, Dict[str, float]] = {}
    for variant, factory in VARIANTS.items():
        fps: Dict[str, float] = {}
        for app in popular_apps(seed=seed):
            run = run_app(app, "vSoC", machine_spec, duration_ms, seed=seed,
                          factory=factory)
            if run.result.ran:
                fps[app.name] = run.result.fps
        fps_by_variant[variant] = fps
    baseline = fps_by_variant["vSoC"]
    return {
        variant: PopularBreakdownResult(variant, fps, baseline)
        for variant, fps in fps_by_variant.items()
        if variant != "vSoC"
    }
