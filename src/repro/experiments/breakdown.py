"""Performance breakdown (§5.4): Figures 12 and 16, plus §5.5's ablations.

* **Fig 12** — FPS per emerging category for vSoC, vSoC without the
  prefetch engine (write-invalidate coherence), and vSoC without virtual
  fences (atomic ordering). Paper: −30% average / −66% video for the
  prefetch ablation; −11% for the fence ablation.
* **Fig 16** — CDF of SVM access latency with the prefetch engine off
  while playing UHD video: the write-invalidate protocol blocks the render
  thread (paper: up to 40.54 ms), frames miss presentation deadlines and
  are discarded.
* **§5.5** — the same two ablations over the top-25 popular apps: the
  fraction of apps losing FPS and the average loss.

All sweeps route through :mod:`repro.experiments.engine`; the ablated
emulator constructors are expressed as dotted-path factories plus kwargs so
each variant hashes to its own stable cache key.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.apps.catalog import (
    EMERGING_CATEGORIES,
    emerging_app_params,
    popular_app_params,
)
from repro.experiments.engine import run_many, run_one, specs_for_apps
from repro.experiments.runner import DEFAULT_DURATION_MS
from repro.hw.machine import HIGH_END_DESKTOP, MachineSpec
from repro.metrics.stats import cdf_points

#: The three Fig 12 variants, in bar order: name → (emulator factory dotted
#: path or None for the stock registry entry, factory kwargs).
VARIANTS: Dict[str, Tuple[Optional[str], Mapping[str, Any]]] = {
    "vSoC": (None, {}),
    "no-prefetch": ("repro.emulators:make_vsoc", {"prefetch": False}),
    "no-fence": ("repro.emulators:make_vsoc", {"fences": False}),
}


@dataclass
class BreakdownResult:
    """Fig 12: category FPS per variant."""

    machine: str
    category_fps: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def variant_mean(self, variant: str) -> float:
        values = [fps[variant] for fps in self.category_fps.values() if variant in fps]
        return sum(values) / len(values) if values else 0.0

    def drop_percent(self, variant: str) -> float:
        """Average FPS drop of a variant relative to full vSoC."""
        full = self.variant_mean("vSoC")
        if full <= 0:
            return 0.0
        return 100.0 * (1.0 - self.variant_mean(variant) / full)


def run_fig12(
    machine_spec: MachineSpec = HIGH_END_DESKTOP,
    duration_ms: float = DEFAULT_DURATION_MS,
    apps_per_category: int = 10,
    seed: int = 0,
    jobs: Optional[int] = None,
    cache: bool = True,
) -> BreakdownResult:
    """The §5.4 ablation sweep over the emerging apps.

    The whole (variant × app) grid is one engine submission.
    """
    result = BreakdownResult(machine=machine_spec.name)
    for category in EMERGING_CATEGORIES:
        result.category_fps[category] = {}
    params = emerging_app_params(seed=seed, per_category=apps_per_category)
    specs = []
    for factory, kwargs in VARIANTS.values():
        specs.extend(specs_for_apps(
            params, "vSoC", machine_spec, duration_ms, seed=seed,
            emulator_factory=factory, emulator_kwargs=kwargs,
        ))
    report = run_many(specs, jobs=jobs, cache=cache)
    for slot, variant in enumerate(VARIANTS):
        sums: Dict[str, List[float]] = {c: [] for c in EMERGING_CATEGORIES}
        for run in report.results[slot * len(params):(slot + 1) * len(params)]:
            if run.result.ran:
                sums[run.result.category].append(run.result.fps)
        for category, values in sums.items():
            if values:
                result.category_fps[category][variant] = sum(values) / len(values)
    return result


@dataclass
class AccessLatencyResult:
    """Fig 16: SVM access latency distribution with prefetch off."""

    samples: List[float]

    def cdf(self) -> List[Tuple[float, float]]:
        return cdf_points(self.samples)

    @property
    def mean(self) -> float:
        return sum(self.samples) / len(self.samples) if self.samples else 0.0

    @property
    def maximum(self) -> float:
        return max(self.samples) if self.samples else 0.0


def run_fig16(
    machine_spec: MachineSpec = HIGH_END_DESKTOP,
    duration_ms: float = DEFAULT_DURATION_MS,
    seed: int = 0,
    prefetch: bool = False,
    cache: bool = True,
) -> AccessLatencyResult:
    """Access-latency CDF on UHD video with the prefetch engine toggled.

    ``prefetch=False`` is the paper's Fig 16 configuration (write-
    invalidate); pass ``True`` to see the healthy baseline for contrast.
    """
    from repro.experiments.engine import RunSpec

    spec = RunSpec(
        app_factory="repro.apps.video:UhdVideoApp",
        app_kwargs={},
        emulator="vSoC",
        machine_spec=machine_spec,
        duration_ms=duration_ms,
        seed=seed,
        emulator_factory="repro.emulators:make_vsoc",
        emulator_kwargs={"prefetch": prefetch},
    )
    run = run_one(spec, cache=cache)
    samples = run.stats.access_latencies() if run.stats is not None else []
    return AccessLatencyResult(samples=samples)


@dataclass
class PopularBreakdownResult:
    """§5.5's popular-app ablation numbers."""

    variant: str
    per_app_fps: Dict[str, float]
    baseline_fps: Dict[str, float]

    @property
    def apps_with_drops(self) -> int:
        """Apps losing more than half an FPS versus full vSoC."""
        return sum(
            1
            for name, fps in self.per_app_fps.items()
            if self.baseline_fps.get(name, 0.0) - fps > 0.5
        )

    @property
    def average_drop_percent(self) -> float:
        drops = []
        for name, fps in self.per_app_fps.items():
            base = self.baseline_fps.get(name)
            if base:
                drops.append(100.0 * (1.0 - fps / base))
        return sum(drops) / len(drops) if drops else 0.0


def run_popular_breakdown(
    machine_spec: MachineSpec = HIGH_END_DESKTOP,
    duration_ms: float = DEFAULT_DURATION_MS,
    seed: int = 0,
    jobs: Optional[int] = None,
    cache: bool = True,
) -> Dict[str, PopularBreakdownResult]:
    """§5.5: both ablations over the top-25 popular apps."""
    params = popular_app_params(seed=seed)
    specs = []
    for factory, kwargs in VARIANTS.values():
        specs.extend(specs_for_apps(
            params, "vSoC", machine_spec, duration_ms, seed=seed,
            emulator_factory=factory, emulator_kwargs=kwargs,
        ))
    report = run_many(specs, jobs=jobs, cache=cache)
    fps_by_variant: Dict[str, Dict[str, float]] = {}
    for slot, variant in enumerate(VARIANTS):
        fps: Dict[str, float] = {}
        for run in report.results[slot * len(params):(slot + 1) * len(params)]:
            if run.result.ran:
                fps[run.result.app] = run.result.fps
        fps_by_variant[variant] = fps
    baseline = fps_by_variant["vSoC"]
    return {
        variant: PopularBreakdownResult(variant, fps, baseline)
        for variant, fps in fps_by_variant.items()
        if variant != "vSoC"
    }
