"""Frozen pre-optimization kernel — benchmark reference ONLY.

This module is a verbatim-behavior copy of the simulation kernel's hot
path (``Simulator`` / ``Process`` / ``ScheduledCall``) and the tracing hot
path (``TraceRecord`` / ``TraceLog.record``) as they stood *before* the
hot-path optimization pass:

* no ``__slots__`` on ``Process``; ``TraceRecord`` is a frozen dataclass
* ``isinstance`` dispatch in ``Process._step`` (no exact-type fast path)
* ``Simulator.run`` delegates to ``step()`` per event (no inlined loop)
* ``pending_events`` is an O(heap) scan; finished processes are retained
* ``TraceLog.record`` uses the dict-get slow path

``repro.experiments.bench`` drives this copy and the live kernel with an
identical synthetic workload to measure the speedup honestly, against a
fixed reference rather than a moving one. Nothing else may import it; it
is not part of the simulation API and receives no new features.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from repro.errors import SimulationError


class Waitable:
    def add_callback(self, fn: Callable[..., None]) -> None:
        raise NotImplementedError


class Timeout:
    __slots__ = ("delay", "value")

    def __init__(self, delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout: {delay}")
        self.delay = delay
        self.value = value


class SimEvent(Waitable):
    def __init__(self, sim: Any, name: str = "event"):
        self._sim = sim
        self.name = name
        self.fired = False
        self.value: Any = None
        self._exception: Optional[BaseException] = None
        self._callbacks: List[Callable[..., None]] = []

    def fire(self, value: Any = None) -> None:
        if self.fired:
            raise SimulationError(f"event {self.name!r} fired twice")
        self.fired = True
        self.value = value
        callbacks, self._callbacks = self._callbacks, []
        for fn in callbacks:
            self._sim.schedule(0.0, fn, value, None)

    def add_callback(self, fn: Callable[..., None]) -> None:
        if self.fired:
            self._sim.schedule(0.0, fn, self.value, self._exception)
        else:
            self._callbacks.append(fn)


class ScheduledCall:
    __slots__ = ("time", "fn", "args", "cancelled")

    def __init__(self, time: float, fn: Callable[..., Any], args: Tuple[Any, ...]):
        self.time = time
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True


class Process(Waitable):
    def __init__(self, sim: "Simulator", gen, name: str = "process"):
        self._sim = sim
        self._gen = gen
        self.name = name
        self.alive = True
        self.value: Any = None
        self.exception: Optional[BaseException] = None
        self._callbacks: List[Callable[..., None]] = []

    def add_callback(self, fn: Callable[..., None]) -> None:
        if not self.alive:
            self._sim.schedule(0.0, fn, self.value, self.exception)
        else:
            self._callbacks.append(fn)

    def _start(self) -> None:
        self._step(None, None)

    def _step(self, value: Any, exc: Optional[BaseException]) -> None:
        hooks = self._sim._hooks
        if hooks:
            for hook in hooks:
                hook.on_process_resume(self._sim.now, self)
        try:
            if exc is not None:
                target = self._gen.throw(exc)
            else:
                target = self._gen.send(value)
        except StopIteration as stop:
            self._finish(stop.value, None)
            return
        except BaseException as err:  # noqa: BLE001
            self._finish(None, err)
            return

        if hooks:
            for hook in hooks:
                hook.on_process_yield(self._sim.now, self, target)
        if isinstance(target, Timeout):
            self._sim.schedule(target.delay, self._step, target.value, None)
        elif isinstance(target, Waitable):
            target.add_callback(self._step)
        else:
            bad = SimulationError(
                f"process {self.name!r} yielded {target!r}; expected a Waitable or Timeout"
            )
            self._finish(None, bad)

    def _finish(self, value: Any, exc: Optional[BaseException]) -> None:
        self.alive = False
        self.value = value
        self.exception = exc
        callbacks, self._callbacks = self._callbacks, []
        if exc is not None and not callbacks:
            self._sim._note_failure(self, exc)
        for fn in callbacks:
            self._sim.schedule(0.0, fn, value, exc)


class Simulator:
    def __init__(self) -> None:
        self._now = 0.0
        self._seq = 0
        self._heap: List[Tuple[float, int, ScheduledCall]] = []
        self._processes: List[Process] = []
        self._failure: Optional[Tuple[Process, BaseException]] = None
        self._hooks: List[Any] = []

    @property
    def now(self) -> float:
        return self._now

    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> ScheduledCall:
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        call = ScheduledCall(self._now + delay, fn, args)
        self._seq += 1
        heapq.heappush(self._heap, (call.time, self._seq, call))
        return call

    def spawn(self, gen, name: str = "process") -> Process:
        proc = Process(self, gen, name=name)
        self._processes.append(proc)
        self.schedule(0.0, proc._start)
        return proc

    def step(self) -> bool:
        while self._heap:
            time, _seq, call = heapq.heappop(self._heap)
            if call.cancelled:
                continue
            if time < self._now:
                raise SimulationError("event heap time went backwards")
            self._now = time
            if self._hooks:
                for hook in self._hooks:
                    hook.on_event_dispatch(time, call)
            call.fn(*call.args)
            self._raise_pending_failure()
            return True
        return False

    def run(self, until: Optional[float] = None) -> None:
        while self._heap:
            time = self._heap[0][0]
            if until is not None and time > until:
                break
            self.step()
        if until is not None and self._now < until:
            self._now = until

    def _note_failure(self, proc: Process, exc: BaseException) -> None:
        if self._failure is None:
            self._failure = (proc, exc)

    def _raise_pending_failure(self) -> None:
        if self._failure is not None:
            proc, exc = self._failure
            self._failure = None
            raise SimulationError(f"process {proc.name!r} failed") from exc

    def pending_events(self) -> int:
        return sum(1 for _t, _s, c in self._heap if not c.cancelled)


@dataclass(frozen=True)
class TraceRecord:
    time: float
    kind: str
    fields: Dict[str, Any] = field(default_factory=dict)


class TraceLog:
    def __init__(self, enabled: bool = True, kinds: Optional[List[str]] = None):
        self.enabled = enabled
        self._kinds = set(kinds) if kinds is not None else None
        self._records: Deque[TraceRecord] = deque()
        self._by_kind: Dict[str, Deque[TraceRecord]] = {}
        self._counts: Dict[str, int] = {}
        self.recorded_total = 0

    def record(self, time: float, kind: str, **fields: Any) -> None:
        if not self.enabled:
            return
        if self._kinds is not None and kind not in self._kinds:
            return
        record = TraceRecord(time, kind, fields)
        self._records.append(record)
        bucket = self._by_kind.get(kind)
        if bucket is None:
            bucket = self._by_kind[kind] = deque()
        bucket.append(record)
        self._counts[kind] = self._counts.get(kind, 0) + 1
        self.recorded_total += 1
