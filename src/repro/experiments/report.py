"""Report rendering: ASCII tables and series shaped like the paper's.

Every experiment's CLI output prints (a) the regenerated numbers and
(b) the paper's reference values beside them, so "shape" comparisons
(ordering, rough factors, crossovers) are immediate.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from repro.units import MIB

#: Paper reference values, for side-by-side printing.
PAPER_TABLE2 = {
    ("vSoC", "high-end-desktop"): (0.34, 2.38, 3.49),
    ("vSoC", "middle-end-laptop"): (0.38, 3.45, 3.24),
    ("GAE", "high-end-desktop"): (0.76, 7.05, 1.56),
    ("GAE", "middle-end-laptop"): (1.16, 11.27, 1.00),
    ("QEMU-KVM", "high-end-desktop"): (0.22, 6.15, 0.96),
    ("QEMU-KVM", "middle-end-laptop"): (0.25, 9.28, 0.89),
}

PAPER_RUNNABLE_EMERGING = {
    "vSoC": 48, "GAE": 47, "QEMU-KVM": 42, "LDPlayer": 43, "Bluestacks": 44, "Trinity": 20,
}
PAPER_RUNNABLE_POPULAR = {
    "vSoC": 25, "GAE": 21, "QEMU-KVM": 17, "LDPlayer": 25, "Bluestacks": 24, "Trinity": 24,
}
#: §5.3: vSoC's average FPS advantage on the high-end machine.
PAPER_FIG10_IMPROVEMENT = {
    "GAE": 82, "QEMU-KVM": 160, "LDPlayer": 292, "Bluestacks": 656, "Trinity": 797,
}
#: §5.5: vSoC's popular-app FPS advantage.
PAPER_FIG15_IMPROVEMENT = {
    "GAE": 49, "QEMU-KVM": 18, "LDPlayer": 23, "Bluestacks": 24, "Trinity": 12,
}


def format_table(headers: Sequence[str], rows: Iterable[Sequence[str]]) -> str:
    """Plain fixed-width table."""
    rows = [list(map(str, row)) for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def fmt(value: Optional[float], digits: int = 2) -> str:
    """Number or '--' for missing."""
    if value is None:
        return "--"
    return f"{value:.{digits}f}"


def format_cdf_summary(points: List[Tuple[float, float]], label: str) -> str:
    """A CDF rendered as its key quantiles (the paper's figures in text)."""
    if not points:
        return f"{label}: (no samples)"
    values = [v for v, _p in points]
    n = len(values)

    def q(fraction: float) -> float:
        return values[min(n - 1, int(fraction * n))]

    return (
        f"{label}: n={n} p10={q(0.10):.2f} p50={q(0.50):.2f} "
        f"p90={q(0.90):.2f} p99={q(0.99):.2f} max={values[-1]:.2f}"
    )


def format_sizes_mib(sizes: List[int]) -> str:
    """Byte sizes as MiB strings (Fig 4's 9.9 / 15.8 MiB callouts)."""
    return ", ".join(f"{s / MIB:.1f} MiB" for s in sizes)
