"""Figure 15 — FPS of the top-25 popular apps (§5.5).

Bar values average only the apps an emulator can run (the paper's counts:
25/21/17/25/24/24), with the pairwise comparison available for the
common-subset check the paper performs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

from repro.apps.catalog import popular_app_params
from repro.experiments.appbench import EMULATORS
from repro.experiments.engine import run_many, specs_for_apps
from repro.experiments.runner import DEFAULT_DURATION_MS
from repro.hw.machine import HIGH_END_DESKTOP, MachineSpec


@dataclass
class PopularResult:
    """One emulator's Fig 15 bar."""

    emulator: str
    per_app: Dict[str, Optional[float]] = field(default_factory=dict)

    @property
    def runnable(self) -> int:
        return sum(1 for fps in self.per_app.values() if fps is not None)

    @property
    def mean_fps(self) -> float:
        values = [fps for fps in self.per_app.values() if fps is not None]
        return sum(values) / len(values) if values else 0.0


def run_fig15(
    machine_spec: MachineSpec = HIGH_END_DESKTOP,
    duration_ms: float = DEFAULT_DURATION_MS,
    emulators: Sequence[str] = EMULATORS,
    seed: int = 0,
    jobs: Optional[int] = None,
    cache: bool = True,
) -> Dict[str, PopularResult]:
    """The popular-app FPS bars (one engine submission for the whole grid)."""
    params = popular_app_params(seed=seed)
    specs = []
    for name in emulators:
        specs.extend(
            specs_for_apps(params, name, machine_spec, duration_ms, seed=seed)
        )
    report = run_many(specs, jobs=jobs, cache=cache)
    results: Dict[str, PopularResult] = {}
    for slot, name in enumerate(emulators):
        result = PopularResult(emulator=name)
        for run in report.results[slot * len(params):(slot + 1) * len(params)]:
            result.per_app[run.result.app] = (
                run.result.fps if run.result.ran else None
            )
        results[name] = result
    return results


def pairwise_improvement(results: Dict[str, PopularResult], baseline: str,
                         reference: str = "vSoC") -> Optional[float]:
    """vSoC's FPS advantage (%) over one emulator on commonly runnable apps."""
    ref, base = results[reference], results[baseline]
    common = [
        name
        for name, fps in ref.per_app.items()
        if fps is not None and base.per_app.get(name) is not None
    ]
    if not common:
        return None
    ref_mean = sum(ref.per_app[n] for n in common) / len(common)
    base_mean = sum(base.per_app[n] for n in common) / len(common)
    if base_mean <= 0:
        return None
    return 100.0 * (ref_mean / base_mean - 1.0)
