"""Recovery acceptance driver: ``python -m repro.experiments recover``.

Exercises the three ISSUE-4 pillars end to end and writes a JSON report
(the CI artifact):

1. **Snapshot round-trip** — capture → serialize → parse → direct
   component restore → recapture must be digest-identical, and a
   deliberately corrupted document must be *rejected* (checksum), never
   half-restored.
2. **Checkpoint/restore determinism** — for each cut point ``T``:
   capture at ``T``, rebuild from the snapshot's recipe, replay to ``T``
   (verifying the recaptured digest against the snapshot), continue to
   ``T+Δ`` — the trace tail after ``T`` must be bit-identical to an
   uninterrupted run's.
3. **Crash recovery + invariants** — the crash-chaos scenarios must
   complete (no deadlock), re-admit every crashed device, and keep the
   frame drop bounded; the invariant auditor must stay clean across the
   non-chaos emulator grid.

Everything is deterministic; a non-zero exit code means an acceptance
criterion failed, and the report names which.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.apps.base import App
from repro.apps.camera import CameraApp
from repro.apps.video import UhdVideoApp
from repro.emulators import EMULATOR_FACTORIES
from repro.errors import SnapshotCorruptError, SnapshotError
from repro.hw.machine import HIGH_END_DESKTOP, MachineSpec, build_machine
from repro.recovery import Snapshot, install_auditor
from repro.sim import Simulator
from repro.sim.tracing import TraceLog

#: Workloads the determinism matrix cycles through.
APP_FACTORIES: Dict[str, Callable[[], App]] = {
    "video": UhdVideoApp,
    "camera": CameraApp,
}


@dataclass
class Harness:
    """One deterministic (emulator, app) run under construction."""

    sim: Simulator
    emulator: Any
    app: App
    trace: TraceLog


def build_harness(
    emulator_name: str,
    app_name: str,
    seed: int = 0,
    machine_spec: MachineSpec = HIGH_END_DESKTOP,
) -> Harness:
    """Assemble one run; identical arguments ⇒ bit-identical behaviour."""
    sim = Simulator()
    machine = build_machine(sim, machine_spec)
    trace = TraceLog()
    make = EMULATOR_FACTORIES[emulator_name]
    emulator = make(sim, machine, trace=trace, rng=random.Random(seed))
    app = APP_FACTORIES[app_name]()
    if not app.install(sim, emulator):
        raise RuntimeError(f"app {app_name!r} failed to install on {emulator_name}")
    return Harness(sim, emulator, app, trace)


def trace_tuples(trace: TraceLog) -> List[Tuple[float, str, tuple]]:
    """A trace reduced to comparable tuples (bit-identity checks)."""
    return [
        (record.time, record.kind, tuple(sorted(record.fields.items())))
        for record in trace._records
    ]


def checkpoint_recipe(
    emulator_name: str, app_name: str, seed: int, cut_ms: float
) -> Dict[str, Any]:
    """The replay recipe a snapshot carries: how to rebuild this run."""
    return {
        "emulator": emulator_name,
        "app": app_name,
        "seed": seed,
        "cut_ms": cut_ms,
        "machine": "high-end-desktop",
    }


def capture_at(
    emulator_name: str, app_name: str, seed: int, cut_ms: float
) -> Snapshot:
    """Run a fresh harness to ``cut_ms`` and checkpoint it."""
    harness = build_harness(emulator_name, app_name, seed=seed)
    harness.sim.run(until=cut_ms)
    return Snapshot.capture(
        harness.emulator,
        recipe=checkpoint_recipe(emulator_name, app_name, seed, cut_ms),
    )


def restore_and_continue(snapshot: Snapshot, total_ms: float) -> Harness:
    """The replay-based restore: rebuild, replay to T (verified), run to Δ.

    Raises :class:`~repro.errors.SnapshotMismatchError` if the replayed
    state at ``T`` diverges from the snapshot — determinism was broken.
    """
    recipe = snapshot.recipe
    harness = build_harness(recipe["emulator"], recipe["app"], seed=recipe["seed"])
    harness.sim.run(until=snapshot.state["sim_now"])
    recaptured = Snapshot.capture(harness.emulator, recipe=recipe)
    snapshot.verify_against(recaptured)
    harness.sim.run(until=total_ms)
    return harness


def checkpoint_restore_matrix(
    cut_points_ms: List[float],
    emulators: Tuple[str, ...] = ("vSoC", "GAE"),
    apps: Tuple[str, ...] = ("video", "camera"),
    total_ms: float = 6_000.0,
    seed: int = 0,
) -> List[Dict[str, Any]]:
    """The acceptance matrix: restore-at-T must bit-match uninterrupted.

    For each (emulator, app): one uninterrupted reference run, then one
    checkpoint + serialize + restore + continue per cut point, comparing
    the post-cut trace tails tuple-for-tuple.
    """
    results: List[Dict[str, Any]] = []
    for emulator_name in emulators:
        for app_name in apps:
            reference = build_harness(emulator_name, app_name, seed=seed)
            reference.sim.run(until=total_ms)
            ref_tuples = trace_tuples(reference.trace)
            for cut_ms in cut_points_ms:
                snapshot = capture_at(emulator_name, app_name, seed, cut_ms)
                # Serialize + reparse so the comparison covers the on-disk
                # format, not just the in-memory object.
                snapshot = Snapshot.from_json(snapshot.to_json())
                entry: Dict[str, Any] = {
                    "emulator": emulator_name,
                    "app": app_name,
                    "cut_ms": cut_ms,
                }
                try:
                    resumed = restore_and_continue(snapshot, total_ms)
                except SnapshotError as err:
                    entry.update(identical=False, error=str(err))
                    results.append(entry)
                    continue
                ref_tail = [t for t in ref_tuples if t[0] >= cut_ms]
                resumed_tail = [
                    t for t in trace_tuples(resumed.trace) if t[0] >= cut_ms
                ]
                entry["identical"] = ref_tail == resumed_tail
                entry["tail_records"] = len(ref_tail)
                results.append(entry)
    return results


def _quiesced_digest(state: Dict[str, Any]) -> str:
    """State digest with live-continuation markers normalized away.

    ``pending_prefetch`` records that a prefetch *process* was in flight at
    capture time. Direct component restore deliberately does not resurrect
    processes (the replay-based restore does — the determinism matrix is
    what holds that path to bit-identity), so the direct round-trip is
    compared on the quiesced state.
    """
    from repro.recovery import canonical_json, state_digest

    state = json.loads(canonical_json(state))
    for region_state in state["manager"]["regions"].values():
        region_state["pending_prefetch"] = False
    return state_digest(state)


def snapshot_roundtrip_check(
    emulator_name: str = "vSoC", app_name: str = "video", cut_ms: float = 2_500.0
) -> Dict[str, Any]:
    """Serialization + direct-restore round-trip, and corruption rejection."""
    snapshot = capture_at(emulator_name, app_name, 0, cut_ms)
    document = snapshot.to_json()

    # Serialize → parse must be lossless.
    reloaded = Snapshot.from_json(document)
    serialize_ok = reloaded.digest() == snapshot.digest()

    # Direct component restore into a *bare* emulator (no app processes to
    # perturb state), then recapture and compare quiesced digests.
    sim = Simulator()
    machine = build_machine(sim, HIGH_END_DESKTOP)
    bare = EMULATOR_FACTORIES[emulator_name](
        sim, machine, trace=TraceLog(), rng=random.Random(0)
    )
    reloaded.restore_into(bare)
    recaptured = Snapshot.capture(bare, recipe=reloaded.recipe)
    roundtrip_ok = _quiesced_digest(recaptured.state) == _quiesced_digest(
        reloaded.state
    )

    # Corruption must be detected, not silently restored: flip one byte in
    # the serialized state (and separately truncate the document).
    mangled = document.replace('"sim_now"', '"sim_nox"', 1)
    corrupt_detected = False
    try:
        Snapshot.from_json(mangled)
    except SnapshotCorruptError:
        corrupt_detected = True
    truncated_detected = False
    try:
        Snapshot.from_json(document[: len(document) // 2])
    except SnapshotCorruptError:
        truncated_detected = True

    return {
        "serialization_lossless": serialize_ok,
        "roundtrip_digest_identical": roundtrip_ok,
        "corruption_rejected": corrupt_detected,
        "truncation_rejected": truncated_detected,
    }


def crash_recovery_check(
    quick: bool = False, strict_audit: bool = False
) -> Dict[str, Any]:
    """Crash-chaos scenarios: completion, re-admission, bounded frame drop.

    ``strict_audit=True`` makes the auditor raise
    :class:`~repro.errors.InvariantViolation` on the first violation
    instead of tallying them.
    """
    from repro.experiments.chaos import (
        crash_chaos_plan,
        crash_with_faults_plan,
        run_chaos,
    )
    from repro.faults import FaultPlan

    # The latest crash lands at 6 000 ms; the run must extend past its
    # downtime so re-admission (and the recovered steady state) is visible.
    duration = 8_000.0 if quick else 10_000.0
    baseline = run_chaos(plan=FaultPlan(), duration_ms=duration)
    scenarios = {
        "crash-only": crash_chaos_plan(),
        "crash-plus-faults": crash_with_faults_plan(),
    }
    out: Dict[str, Any] = {"baseline_fps": baseline.fps, "scenarios": {}}
    for label, plan in scenarios.items():
        result = run_chaos(plan=plan, duration_ms=duration, audit=True,
                           strict_audit=strict_audit)
        out["scenarios"][label] = {
            "fps": result.fps,
            "steady_fps": result.steady_fps,
            "crashes": result.crashes,
            "recoveries": result.recoveries,
            "aborted_commands": result.aborted_commands,
            "poisoned_fences": result.poisoned_fences,
            "quarantined_regions": result.quarantined_regions,
            "replayed_copies": result.replayed_copies,
            "audit_violations": result.audit_violations,
            "all_recovered": result.recoveries == result.crashes > 0,
            # "bounded frame drop": the run keeps presenting frames at a
            # usable rate despite losing devices for hundreds of ms.
            "fps_bounded": result.fps >= 0.5 * baseline.fps,
        }
    return out


def audited_grid_check(
    quick: bool = False,
    emulators: Tuple[str, ...] = ("vSoC", "GAE", "Trinity"),
    strict_audit: bool = False,
) -> Dict[str, Any]:
    """Run the non-chaos grid with the auditor on: must be violation-free."""
    duration = 4_000.0 if quick else 8_000.0
    grid: Dict[str, Any] = {}
    total = 0
    for emulator_name in emulators:
        for app_name in APP_FACTORIES:
            try:
                harness = build_harness(emulator_name, app_name, seed=0)
            except RuntimeError:
                # Not every emulator supports every workload (e.g. no
                # camera passthrough); an unsupported cell is not a
                # coherence violation.
                grid[f"{emulator_name}/{app_name}"] = {"skipped": True}
                continue
            auditor = install_auditor(harness.emulator,
                                      raise_on_violation=strict_audit)
            harness.sim.run(until=duration)
            auditor.sweep()  # one final sweep at the end state
            report = auditor.report()
            grid[f"{emulator_name}/{app_name}"] = {
                "audits": report["audits"],
                "checks": report["checks"],
                "violations": len(report["violations"]),
            }
            total += len(report["violations"])
    return {"grid": grid, "total_violations": total}


def _recover_reproduce_line(quick: bool, seed: int, strict_audit: bool) -> str:
    """The one-line command that replays this exact recover run."""
    flags = ""
    if quick:
        flags += " --quick"
    if strict_audit:
        flags += " --strict-audit"
    return f"REPRODUCE: python -m repro.experiments recover --seed {seed}{flags}"


def cmd_recover(
    quick: bool = False,
    report_path: Optional[str] = None,
    seed: int = 0,
    strict_audit: bool = False,
) -> int:
    """The ``recover`` subcommand. Returns a process exit code.

    ``strict_audit=True`` arms the invariant auditor in raising mode for
    the crash scenarios and the non-chaos grid; the first violation
    aborts the run (with a REPRODUCE line) instead of being tallied.
    """
    from repro.errors import InvariantViolation

    cuts = [1_234.5, 2_000.0] if quick else [987.6, 1_500.0, 2_345.0, 3_000.0, 4_321.0]
    total = 5_000.0 if quick else 6_000.0

    print("Snapshot round-trip + corruption rejection:")
    roundtrip = snapshot_roundtrip_check()
    for key, value in roundtrip.items():
        print(f"  {key}: {value}")

    print("\nCheckpoint/restore determinism (restore at T, run to T+Δ):")
    matrix = checkpoint_restore_matrix(cuts, total_ms=total, seed=seed)
    for entry in matrix:
        status = "bit-identical" if entry.get("identical") else f"DIVERGED: {entry.get('error', 'trace tail differs')}"
        print(f"  {entry['emulator']:6s} {entry['app']:6s} T={entry['cut_ms']:7.1f}ms  {status}")

    try:
        print("\nDevice-crash recovery:")
        crash = crash_recovery_check(quick=quick, strict_audit=strict_audit)
        print(f"  baseline fps: {crash['baseline_fps']:.1f}")
        for label, r in crash["scenarios"].items():
            print(
                f"  {label:18s} fps={r['fps']:.1f} crashes={r['crashes']} "
                f"recoveries={r['recoveries']} aborted={r['aborted_commands']} "
                f"poisoned={r['poisoned_fences']} replayed={r['replayed_copies']} "
                f"violations={r['audit_violations']}"
            )

        print("\nAudited non-chaos grid:")
        audited = audited_grid_check(quick=quick, strict_audit=strict_audit)
    except InvariantViolation as err:
        print(f"\nFAILED: invariant {err.invariant!r} violated under "
              f"strict audit: {err}")
        print(_recover_reproduce_line(quick, seed, strict_audit))
        return 1
    for cell, r in audited["grid"].items():
        if r.get("skipped"):
            print(f"  {cell:16s} skipped (workload unsupported)")
            continue
        print(f"  {cell:16s} audits={r['audits']:4d} checks={r['checks']:6d} "
              f"violations={r['violations']}")

    failures: List[str] = []
    if not all(roundtrip.values()):
        failures.append("snapshot round-trip / corruption rejection")
    if not all(entry.get("identical") for entry in matrix):
        failures.append("checkpoint/restore determinism")
    for label, r in crash["scenarios"].items():
        if not (r["all_recovered"] and r["fps_bounded"]):
            failures.append(f"crash recovery ({label})")
        if r["audit_violations"]:
            failures.append(f"invariant violations under chaos ({label})")
    if audited["total_violations"]:
        failures.append("invariant violations on the non-chaos grid")

    report = {
        "quick": quick,
        "seed": seed,
        "strict_audit": strict_audit,
        "roundtrip": roundtrip,
        "checkpoint_restore": matrix,
        "crash_recovery": crash,
        "audited_grid": audited,
        "failures": failures,
        "ok": not failures,
    }
    if report_path is not None:
        with open(report_path, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
        print(f"\nreport written to {report_path}")

    if failures:
        print(f"\nFAILED: {', '.join(failures)}")
        print(_recover_reproduce_line(quick, seed, strict_audit))
        return 1
    print("\nAll recovery acceptance checks passed.")
    return 0
