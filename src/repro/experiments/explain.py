"""``explain``: where did each frame's latency go?

The front door of the latency-attribution engine
(:mod:`repro.obs.critical`).  One command runs a single (app, emulator)
pair with attribution enabled — or replays it from the engine's run
cache, since the :class:`~repro.obs.critical.LatencyBudget` rides the
cached :class:`~repro.obs.fleet.TelemetrySnapshot` — and prints:

* the per-category × device **latency budget** (ms and share), with the
  conservation invariant checked (cells must sum to measured latency);
* the **critical path** of the worst frame: the maximum-duration chain
  of causal activities that ended at its presentation;
* the frame-deadline **SLO** verdict (:mod:`repro.obs.slo`);
* with ``--against OTHER``, a **differential triage**
  (:mod:`repro.obs.diff`): the budget of OTHER on the same app, aligned
  frame-by-frame against the primary emulator, localized to the
  dominant regressed cell and graded with a seeded bootstrap — e.g.
  ``p99 +3.1 ms, 92% from bus_transfer on gpu``.

Both modes emit a JSON artifact (``--out``) whose shape is pinned by
``validate_attribution`` / ``validate_attribution_diff`` — CI's contract
for downstream consumers.

Attribution is pure post-hoc analysis of spans recorded anyway: FPS and
latency digests are bit-identical with it on or off, and a warm-cache
``explain`` never re-simulates.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Tuple

from repro.hw.machine import HIGH_END_DESKTOP, MachineSpec

#: Schema identifier stamped into every single-run attribution JSON.
ATTRIBUTION_SCHEMA = "repro-attribution-v1"

#: Schema identifier stamped into every differential attribution JSON.
DIFF_SCHEMA = "repro-attribution-diff-v1"

DEFAULT_DURATION_MS = 8_000.0

#: Workloads explain can attribute (same set the ``observe`` command runs),
#: as dotted factory paths the engine's workers resolve.
APP_FACTORIES: Dict[str, str] = {
    "video": "repro.apps.video:UhdVideoApp",
    "camera": "repro.apps.camera:CameraApp",
    "ar": "repro.apps.ar:ArApp",
    "livestream": "repro.apps.livestream:LivestreamApp",
}


def resolve_emulator(name: str) -> str:
    """Map a CLI emulator spelling onto its canonical factory key.

    The factories register under display names (``vSoC``, ``QEMU-KVM``);
    the CLI accepts any casing and treats ``-``/``_`` as equivalent, so
    ``--against qemu_kvm`` finds ``QEMU-KVM``.
    """
    from repro.emulators import EMULATOR_FACTORIES

    if name in EMULATOR_FACTORIES:
        return name
    wanted = name.lower().replace("_", "-")
    for key in EMULATOR_FACTORIES:
        if key.lower().replace("_", "-") == wanted:
            return key
    raise ValueError(
        f"unknown emulator {name!r}; choose from {sorted(EMULATOR_FACTORIES)}"
    )


def explain_run(
    app: str,
    emulator: str,
    duration_ms: float = DEFAULT_DURATION_MS,
    seed: int = 0,
    machine_spec: MachineSpec = HIGH_END_DESKTOP,
    cache: bool = True,
) -> Tuple[Any, Any]:
    """One attributed run → (LatencyBudget, AppResult).

    Routes through the engine so the budget is memoized with the run: a
    second ``explain`` of the same point reads the persisted snapshot
    and attributes without simulating.
    """
    from repro.experiments.engine import RunSpec, run_one
    from repro.obs.critical import budget_from_snapshot

    if app not in APP_FACTORIES:
        raise ValueError(f"unknown app {app!r}; choose from {sorted(APP_FACTORIES)}")
    spec = RunSpec(
        app_factory=APP_FACTORIES[app],
        app_kwargs={},
        emulator=resolve_emulator(emulator),
        machine_spec=machine_spec,
        duration_ms=duration_ms,
        seed=seed,
        telemetry=True,
        attribution=True,
    )
    run = run_one(spec, cache=cache)
    budget = budget_from_snapshot(run.telemetry)
    if budget is None:
        raise RuntimeError(
            f"run of {app!r} on {spec.emulator!r} produced no attribution "
            "(app incompatible with this emulator?)"
        )
    return budget, run.result


def attribution_report(
    budget: Any,
    app: str,
    emulator: str,
    duration_ms: float,
    seed: int,
    deadline_ms: Optional[float] = None,
) -> Dict[str, Any]:
    """The single-run attribution JSON (schema ``repro-attribution-v1``)."""
    from repro.metrics.stats import percentile
    from repro.obs.slo import SloSpec, evaluate_frames

    totals = budget.totals()
    total_ms = sum(totals.values())
    cells = [
        {
            "category": category,
            "device": device,
            "ms": ms,
            "share": ms / total_ms if total_ms > 0 else 0.0,
        }
        for (category, device), ms in totals.items()
    ]
    dominant = budget.dominant_cell()
    latencies = budget.latencies()
    spec = SloSpec() if deadline_ms is None else SloSpec(deadline_ms=deadline_ms)
    slo = evaluate_frames(latencies, spec)
    return {
        "schema": ATTRIBUTION_SCHEMA,
        "app": app,
        "emulator": emulator,
        "duration_ms": duration_ms,
        "seed": seed,
        "frames": len(budget.frames),
        "skipped_flows": len(budget.skipped_flows),
        "ff_multiplier": budget.ff_multiplier,
        "latency": {
            "p50_ms": percentile(latencies, 50.0, default=None),
            "p95_ms": percentile(latencies, 95.0, default=None),
            "p99_ms": percentile(latencies, 99.0, default=None),
            "total_ms": budget.total_latency_ms(),
        },
        "cells": cells,
        "categories": budget.category_totals(),
        "dominant": None if dominant is None else {
            "category": dominant[0], "device": dominant[1], "ms": dominant[2],
        },
        "conservation": {
            "ok": not budget.conservation_errors(),
            "violations": budget.conservation_errors(),
        },
        "slo": slo.to_dict(),
        "critical_path": [
            {"name": s.name, "track": s.track,
             "start_ms": s.start_ms, "end_ms": s.end_ms, "ms": s.ms}
            for s in budget.critical_path
        ],
        "budget": budget.to_dict(),
    }


def diff_report(
    base_report: Dict[str, Any],
    against_report: Dict[str, Any],
    diff: Dict[str, Any],
) -> Dict[str, Any]:
    """The differential attribution JSON (schema ``repro-attribution-diff-v1``).

    ``base`` is the primary (``--emulator``) run, ``candidate`` the
    ``--against`` run: the diff localizes where the latter spends *more*.
    """
    return {
        "schema": DIFF_SCHEMA,
        "app": base_report["app"],
        "base": {k: base_report[k] for k in
                 ("emulator", "frames", "latency", "categories", "dominant")},
        "candidate": {k: against_report[k] for k in
                      ("emulator", "frames", "latency", "categories", "dominant")},
        "diff": diff,
        "headline": (
            f"{against_report['emulator']} vs {base_report['emulator']}: "
            f"{diff['headline']}"
        ),
    }


# ---------------------------------------------------------------------------
# Schema validators (CI's contract)
# ---------------------------------------------------------------------------

def _need(problems: List[str], mapping: Any, key: str, types, where: str):
    if not isinstance(mapping, dict) or key not in mapping:
        problems.append(f"{where}: missing {key!r}")
        return None
    value = mapping[key]
    if not isinstance(value, types):
        problems.append(
            f"{where}.{key}: expected {types}, got {type(value).__name__}"
        )
        return None
    return value


def validate_attribution(data: Any) -> List[str]:
    """Schema check for a single-run attribution JSON; returns problems."""
    from repro.obs.critical import BUDGET_CATEGORIES

    problems: List[str] = []
    if _need(problems, data, "schema", str, "root") != ATTRIBUTION_SCHEMA:
        problems.append(f"root.schema: expected {ATTRIBUTION_SCHEMA!r}")
    for key in ("app", "emulator"):
        _need(problems, data, key, str, "root")
    frames = _need(problems, data, "frames", int, "root")
    if frames is not None and frames < 0:
        problems.append("root.frames: must be >= 0")
    cells = _need(problems, data, "cells", list, "root")
    if cells is not None:
        for i, cell in enumerate(cells):
            where = f"cells[{i}]"
            category = _need(problems, cell, "category", str, where)
            if category is not None and category not in BUDGET_CATEGORIES:
                problems.append(f"{where}.category: unknown {category!r}")
            _need(problems, cell, "device", str, where)
            ms = _need(problems, cell, "ms", (int, float), where)
            if ms is not None and ms < 0:
                problems.append(f"{where}.ms: must be >= 0")
    categories = _need(problems, data, "categories", dict, "root")
    if categories is not None:
        for category in BUDGET_CATEGORIES:
            if category not in categories:
                problems.append(f"categories: missing {category!r}")
    conservation = _need(problems, data, "conservation", dict, "root")
    if conservation is not None:
        ok = conservation.get("ok")
        if ok is not True:
            problems.append(
                "conservation.ok: cells do not sum to measured frame latency"
            )
    _need(problems, data, "latency", dict, "root")
    _need(problems, data, "slo", dict, "root")
    _need(problems, data, "critical_path", list, "root")
    _need(problems, data, "budget", dict, "root")
    return problems


def validate_attribution_diff(data: Any) -> List[str]:
    """Schema check for a differential attribution JSON; returns problems."""
    problems: List[str] = []
    if _need(problems, data, "schema", str, "root") != DIFF_SCHEMA:
        problems.append(f"root.schema: expected {DIFF_SCHEMA!r}")
    _need(problems, data, "app", str, "root")
    for side in ("base", "candidate"):
        node = _need(problems, data, side, dict, "root")
        if node is not None:
            _need(problems, node, "emulator", str, side)
            _need(problems, node, "frames", int, side)
    diff = _need(problems, data, "diff", dict, "root")
    if diff is not None:
        matched = _need(problems, diff, "frames_matched", int, "diff")
        if matched is not None and matched < 0:
            problems.append("diff.frames_matched: must be >= 0")
        _need(problems, diff, "cells", list, "diff")
        _need(problems, diff, "latency", dict, "diff")
        bootstrap = _need(problems, diff, "bootstrap", dict, "diff")
        if bootstrap is not None:
            p_value = bootstrap.get("p_value")
            if p_value is not None and not (
                isinstance(p_value, (int, float)) and 0.0 <= p_value <= 1.0
            ):
                problems.append("diff.bootstrap.p_value: not in [0, 1]")
        dominant = diff.get("dominant")
        if dominant is not None:
            _need(problems, dominant, "category", str, "diff.dominant")
            _need(problems, dominant, "device", str, "diff.dominant")
    _need(problems, data, "headline", str, "root")
    return problems


# ---------------------------------------------------------------------------
# CLI body
# ---------------------------------------------------------------------------

def _print_budget(report: Dict[str, Any]) -> None:
    print(f"Latency budget — {report['app']!r} on {report['emulator']!r} "
          f"({report['frames']} frames, "
          f"{report['latency']['total_ms']:.1f} ms total latency"
          + (f", x{report['ff_multiplier']:.1f} fast-forward scale"
             if report["ff_multiplier"] > 1.0 else "") + "):")
    for cell in sorted(report["cells"], key=lambda c: -c["ms"]):
        bar = "#" * max(1, round(24 * cell["share"]))
        print(f"  {cell['category']:18s} {cell['device']:10s} "
              f"{cell['ms']:10.1f} ms {100 * cell['share']:5.1f}%  {bar}")
    dominant = report["dominant"]
    if dominant:
        print(f"  dominant: {dominant['category']} on {dominant['device']} "
              f"({dominant['ms']:.1f} ms)")
    lat = report["latency"]
    if lat["p50_ms"] is not None:
        print(f"  frame latency: p50 {lat['p50_ms']:.2f} ms, "
              f"p95 {lat['p95_ms']:.2f} ms, p99 {lat['p99_ms']:.2f} ms")
    slo = report["slo"]
    print(f"  SLO {slo['spec']['name']} (deadline {slo['spec']['deadline_ms']:.0f} ms, "
          f"target {100 * slo['spec']['target']:.0f}%): "
          f"{'MET' if slo['met'] else 'MISSED'} "
          f"(compliance {100 * slo['compliance']:.1f}%, "
          f"peak burn {slo['peak_burn']:.2f}x)")
    if report["skipped_flows"]:
        print(f"  note: {report['skipped_flows']} in-flight flow(s) never "
              "presented — excluded, not guessed at")
    print(f"  conservation: "
          f"{'ok' if report['conservation']['ok'] else 'VIOLATED'} "
          "(cells sum to measured latency per frame)")
    path = report["critical_path"]
    if path:
        print(f"  critical path of the worst frame ({len(path)} steps):")
        for step in path:
            print(f"    {step['start_ms']:10.3f} -> {step['end_ms']:10.3f} ms  "
                  f"{step['name']}  [{step['track']}]")


def cmd_explain(
    app: str,
    emulator: str,
    against: Optional[str] = None,
    duration_ms: float = DEFAULT_DURATION_MS,
    seed: int = 0,
    out_path: Optional[str] = None,
    deadline_ms: Optional[float] = None,
    cache: bool = True,
) -> int:
    """CLI body: attribute one run, optionally diff it against another."""
    emulator = resolve_emulator(emulator)
    budget, _result = explain_run(
        app, emulator, duration_ms=duration_ms, seed=seed, cache=cache
    )
    report = attribution_report(
        budget, app, emulator, duration_ms, seed, deadline_ms=deadline_ms
    )
    _print_budget(report)
    payload: Dict[str, Any] = report
    problems = validate_attribution(report)

    if against is not None:
        from repro.obs.diff import diff_budgets

        against = resolve_emulator(against)
        against_budget, _ = explain_run(
            app, against, duration_ms=duration_ms, seed=seed, cache=cache
        )
        against_rep = attribution_report(
            against_budget, app, against, duration_ms, seed,
            deadline_ms=deadline_ms,
        )
        diff = diff_budgets(budget, against_budget, seed=seed)
        payload = diff_report(report, against_rep, diff)
        problems = validate_attribution_diff(payload)
        print(f"\nDifferential triage — {against!r} vs {emulator!r} "
              f"({diff['frames_matched']} matched frames):")
        print(f"  {diff['headline']}")
        for cell in sorted(diff["cells"], key=lambda c: -abs(c["delta_ms"]))[:6]:
            print(f"  {cell['category']:18s} {cell['device']:10s} "
                  f"{cell['base_ms']:9.1f} -> {cell['candidate_ms']:9.1f} ms "
                  f"({cell['delta_ms']:+.1f} ms)")

    if problems:
        for problem in problems:
            print(f"SCHEMA PROBLEM: {problem}")
        return 1
    if out_path:
        with open(out_path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"\nWrote {out_path}")
    return 0
