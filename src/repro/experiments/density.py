"""Instance density: how many emulators fit on one host?

Not a paper figure, but the deployment question behind it — vSoC ships in
an IDE, and device-farm / cloud-rendering deployments (§7's DroidCloud and
CARE) care about instances-per-host. Because every emulator instance in
this library binds to the *same* :class:`~repro.hw.machine.HostMachine`,
running several at once contends for the real shared resources: the GPU's
engines, the PCIe link, and the boundary path. The unified framework's
lower bus traffic translates directly into higher density.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List

from repro.apps.video import UhdVideoApp
from repro.emulators import EMULATOR_FACTORIES
from repro.hw.machine import HIGH_END_DESKTOP, MachineSpec, build_machine
from repro.sim import Simulator


@dataclass
class DensityResult:
    """Mean per-instance FPS at each instance count."""

    emulator: str
    machine: str
    fps_by_instances: Dict[int, float] = field(default_factory=dict)

    def max_instances_at(self, fps_floor: float) -> int:
        """Largest tested instance count whose mean FPS clears the floor."""
        eligible = [n for n, fps in self.fps_by_instances.items() if fps >= fps_floor]
        return max(eligible) if eligible else 0


def run_density(
    emulator_name: str,
    instance_counts=(1, 2, 4),
    machine_spec: MachineSpec = HIGH_END_DESKTOP,
    duration_ms: float = 10_000.0,
    seed: int = 0,
) -> DensityResult:
    """Run N video-playing emulator instances on one shared host."""
    result = DensityResult(emulator=emulator_name, machine=machine_spec.name)
    for count in instance_counts:
        sim = Simulator()
        machine = build_machine(sim, machine_spec)
        apps: List[UhdVideoApp] = []
        for index in range(count):
            emulator = EMULATOR_FACTORIES[emulator_name](
                sim, machine, rng=random.Random(seed + index)
            )
            app = UhdVideoApp(name=f"video-{index}")
            if app.install(sim, emulator):
                apps.append(app)
        sim.run(until=duration_ms)
        fps_values = [
            app.fps.fps(duration_ms, warmup_ms=app.warmup_ms) for app in apps
        ]
        result.fps_by_instances[count] = sum(fps_values) / len(fps_values)
    return result


def run_density_comparison(
    emulators=("vSoC", "GAE"),
    instance_counts=(1, 2, 4),
    machine_spec: MachineSpec = HIGH_END_DESKTOP,
    duration_ms: float = 10_000.0,
    seed: int = 0,
) -> Dict[str, DensityResult]:
    """Density curves for several emulators on the same host spec."""
    return {
        name: run_density(name, instance_counts, machine_spec, duration_ms, seed)
        for name in emulators
    }
