"""Instance density: how many emulators fit on one host?

Not a paper figure, but the deployment question behind it — vSoC ships in
an IDE, and device-farm / cloud-rendering deployments (§7's DroidCloud and
CARE) care about instances-per-host. Because every emulator instance in
this library binds to the *same* :class:`~repro.hw.machine.HostMachine`,
running several at once contends for the real shared resources: the GPU's
engines, the PCIe link, and the boundary path. The unified framework's
lower bus traffic translates directly into higher density.

The unit of work here is *several* emulator instances sharing one
simulator, so it cannot be a :class:`~repro.experiments.engine.RunSpec`;
:func:`density_point` is the pure module-level function the engine runs as
a :class:`~repro.experiments.engine.PointSpec` instead.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.apps.video import UhdVideoApp
from repro.emulators import EMULATOR_FACTORIES
from repro.experiments.engine import PointSpec, run_many
from repro.hw.machine import HIGH_END_DESKTOP, MachineSpec, build_machine
from repro.sim import Simulator


@dataclass
class DensityResult:
    """Mean per-instance FPS at each instance count."""

    emulator: str
    machine: str
    fps_by_instances: Dict[int, float] = field(default_factory=dict)

    def max_instances_at(self, fps_floor: float) -> int:
        """Largest tested instance count whose mean FPS clears the floor."""
        eligible = [n for n, fps in self.fps_by_instances.items() if fps >= fps_floor]
        return max(eligible) if eligible else 0


def density_point(
    emulator_name: str,
    count: int,
    machine_spec: MachineSpec = HIGH_END_DESKTOP,
    duration_ms: float = 10_000.0,
    seed: int = 0,
) -> float:
    """Mean per-instance FPS of ``count`` video players on one shared host."""
    sim = Simulator()
    machine = build_machine(sim, machine_spec)
    apps: List[UhdVideoApp] = []
    for index in range(count):
        emulator = EMULATOR_FACTORIES[emulator_name](
            sim, machine, rng=random.Random(seed + index)
        )
        app = UhdVideoApp(name=f"video-{index}")
        if app.install(sim, emulator):
            apps.append(app)
    sim.run(until=duration_ms)
    fps_values = [
        app.fps.fps(duration_ms, warmup_ms=app.warmup_ms) for app in apps
    ]
    return sum(fps_values) / len(fps_values)


def _density_specs(emulator_name, instance_counts, machine_spec, duration_ms,
                   seed) -> List[PointSpec]:
    return [
        PointSpec(
            fn="repro.experiments.density:density_point",
            kwargs=dict(
                emulator_name=emulator_name,
                count=count,
                machine_spec=machine_spec,
                duration_ms=duration_ms,
                seed=seed,
            ),
        )
        for count in instance_counts
    ]


def run_density(
    emulator_name: str,
    instance_counts=(1, 2, 4),
    machine_spec: MachineSpec = HIGH_END_DESKTOP,
    duration_ms: float = 10_000.0,
    seed: int = 0,
    jobs: Optional[int] = None,
    cache: bool = True,
) -> DensityResult:
    """Run N video-playing emulator instances on one shared host."""
    result = DensityResult(emulator=emulator_name, machine=machine_spec.name)
    specs = _density_specs(emulator_name, instance_counts, machine_spec,
                           duration_ms, seed)
    report = run_many(specs, jobs=jobs, cache=cache)
    for count, fps in zip(instance_counts, report.results):
        result.fps_by_instances[count] = fps
    return result


def run_density_comparison(
    emulators=("vSoC", "GAE"),
    instance_counts=(1, 2, 4),
    machine_spec: MachineSpec = HIGH_END_DESKTOP,
    duration_ms: float = 10_000.0,
    seed: int = 0,
    jobs: Optional[int] = None,
    cache: bool = True,
) -> Dict[str, DensityResult]:
    """Density curves for several emulators on the same host spec.

    The whole (emulator × count) grid is one engine submission.
    """
    specs = []
    for name in emulators:
        specs.extend(_density_specs(name, instance_counts, machine_spec,
                                    duration_ms, seed))
    report = run_many(specs, jobs=jobs, cache=cache)
    results: Dict[str, DensityResult] = {}
    for slot, name in enumerate(emulators):
        result = DensityResult(emulator=name, machine=machine_spec.name)
        chunk = report.results[
            slot * len(instance_counts):(slot + 1) * len(instance_counts)
        ]
        for count, fps in zip(instance_counts, chunk):
            result.fps_by_instances[count] = fps
        results[name] = result
    return results
