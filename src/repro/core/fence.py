"""Virtual command fences (§3.4).

Two fence instructions exist: **signal** — fires when the operations
preceding it in a command queue have finished — and **wait** — blocks the
host executor until the paired signal has fired. They always represent a
happens-before relationship; multiple waits on one signal are allowed.

The *virtual fence table* aggregates fence statuses and is shared with the
guest. §4 limits it to a single memory page to avoid the cost of walking
non-contiguous guest pages from the host, and recycles signalled indices
when the supply of unused ones runs low. The *physical fence tables* track
the device-specific synchronization primitives (``glFenceSync`` and
friends) that host-side execution maps virtual fences onto; in the
simulation a primitive is the completion event of the device operation.
"""

from __future__ import annotations

import enum
from typing import Dict, List

from repro.errors import FenceError, FenceTableFullError
from repro.sim import SimEvent, Simulator
from repro.sim.primitives import Waitable
from repro.units import PAGE_SIZE

#: Bytes of guest-shared state per fence entry (index + status word).
FENCE_ENTRY_BYTES = 8
#: How many entries fit in the one-page table: 4096 / 8 = 512.
FENCE_TABLE_CAPACITY = PAGE_SIZE // FENCE_ENTRY_BYTES
#: Recycling kicks in when unused indices drop below this fraction.
RECYCLE_LOW_WATER = 0.25


class FenceState(enum.Enum):
    """Lifecycle of a virtual fence slot."""

    PENDING = "pending"
    SIGNALED = "signaled"
    RECYCLED = "recycled"


class VirtualFence:
    """One signal/wait pair occupying a slot of the virtual fence table."""

    __slots__ = ("index", "state", "_event", "waiters")

    def __init__(self, sim: Simulator, index: int):
        self.index = index
        self.state = FenceState.PENDING
        self._event = SimEvent(sim, name=f"fence[{index}]")
        self.waiters = 0

    def signal(self) -> None:
        """Mark the preceding operations complete; wakes every waiter."""
        if self.state is not FenceState.PENDING:
            raise FenceError(f"fence {self.index} signalled in state {self.state.value}")
        self.state = FenceState.SIGNALED
        self._event.fire(None)

    def wait(self) -> Waitable:
        """Waitable that fires once the paired signal has happened.

        Waiting on a RECYCLED fence is legal and fires immediately: a fence
        is only ever recycled after it signalled, so its happens-before
        obligation is already discharged (this is what makes index
        recycling safe in §4).
        """
        self.waiters += 1
        return self._event

    @property
    def signaled(self) -> bool:
        return self.state is FenceState.SIGNALED

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<VirtualFence #{self.index} {self.state.value}>"


class VirtualFenceTable:
    """The page-limited, guest-shared table of virtual fences.

    Allocation hands out fresh indices until the free supply runs low, then
    recycles signalled fences (oldest first), mirroring §4. Allocating with
    every slot pending raises :class:`FenceTableFullError` — back-pressure
    the flow-control layer is expected to prevent.
    """

    def __init__(self, sim: Simulator, capacity: int = FENCE_TABLE_CAPACITY):
        if capacity <= 0:
            raise FenceError("fence table capacity must be positive")
        self._sim = sim
        self.capacity = capacity
        self._slots: Dict[int, VirtualFence] = {}
        self._free: List[int] = list(range(capacity - 1, -1, -1))  # pop() -> 0,1,2...
        self.allocated_total = 0
        self.recycled_total = 0

    def allocate(self) -> VirtualFence:
        """Allocate a fence slot, recycling signalled entries when low."""
        if len(self._free) < max(1, int(self.capacity * RECYCLE_LOW_WATER)):
            self._recycle_signaled()
        if not self._free:
            raise FenceTableFullError(
                f"all {self.capacity} fence slots pending — guest is outrunning the host"
            )
        index = self._free.pop()
        fence = VirtualFence(self._sim, index)
        self._slots[index] = fence
        self.allocated_total += 1
        return fence

    def get(self, index: int) -> VirtualFence:
        try:
            return self._slots[index]
        except KeyError:
            raise FenceError(f"no live fence at index {index}") from None

    def _recycle_signaled(self) -> None:
        """Reclaim indices whose fences have signalled (status query done)."""
        for index in sorted(self._slots):
            fence = self._slots[index]
            if fence.state is FenceState.SIGNALED:
                fence.state = FenceState.RECYCLED
                del self._slots[index]
                self._free.append(index)
                self.recycled_total += 1

    @property
    def live_fences(self) -> int:
        return len(self._slots)

    @property
    def shared_bytes(self) -> int:
        """Guest-shared footprint — bounded by one page by construction."""
        return self.capacity * FENCE_ENTRY_BYTES


class PhysicalFenceTable:
    """Per-physical-device map of in-flight synchronization primitives.

    In the real system these are ``glFenceSync`` objects and driver events;
    here a primitive is the :class:`~repro.sim.primitives.SimEvent` that a
    host executor fires when a device operation retires. The table exists
    so status queries (`aggregate` in §3.4) have one place to look.
    """

    def __init__(self, device_name: str):
        self.device_name = device_name
        self._primitives: Dict[int, SimEvent] = {}
        self._next_id = 0

    def insert(self, completion: SimEvent) -> int:
        """Track a device-specific primitive; returns its slot id."""
        slot = self._next_id
        self._next_id += 1
        self._primitives[slot] = completion
        return slot

    def is_complete(self, slot: int) -> bool:
        try:
            return self._primitives[slot].fired
        except KeyError:
            raise FenceError(
                f"device {self.device_name!r} has no primitive #{slot}"
            ) from None

    def reap(self) -> int:
        """Drop completed primitives; returns how many were reaped."""
        done = [slot for slot, ev in self._primitives.items() if ev.fired]
        for slot in done:
            del self._primitives[slot]
        return len(done)

    @property
    def outstanding(self) -> int:
        return len(self._primitives)
