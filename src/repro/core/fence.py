"""Virtual command fences (§3.4).

Two fence instructions exist: **signal** — fires when the operations
preceding it in a command queue have finished — and **wait** — blocks the
host executor until the paired signal has fired. They always represent a
happens-before relationship; multiple waits on one signal are allowed.

The *virtual fence table* aggregates fence statuses and is shared with the
guest. §4 limits it to a single memory page to avoid the cost of walking
non-contiguous guest pages from the host, and recycles signalled indices
when the supply of unused ones runs low. The *physical fence tables* track
the device-specific synchronization primitives (``glFenceSync`` and
friends) that host-side execution maps virtual fences onto; in the
simulation a primitive is the completion event of the device operation.
"""

from __future__ import annotations

import enum
from typing import Any, Dict, List, Optional

from repro.errors import FenceError, FenceTableFullError
from repro.sim import SimEvent, Simulator
from repro.sim.primitives import Waitable
from repro.units import PAGE_SIZE

#: Bytes of guest-shared state per fence entry (index + status word).
FENCE_ENTRY_BYTES = 8
#: How many entries fit in the one-page table: 4096 / 8 = 512.
FENCE_TABLE_CAPACITY = PAGE_SIZE // FENCE_ENTRY_BYTES
#: Recycling kicks in when unused indices drop below this fraction.
RECYCLE_LOW_WATER = 0.25

#: Value delivered to waiters of a fence that was poisoned instead of
#: signalled — waiters resume normally and must re-validate any state the
#: fence was ordering (the coherence protocols re-check region validity).
POISONED_STATUS = "poisoned"


class FenceState(enum.Enum):
    """Lifecycle of a virtual fence slot."""

    PENDING = "pending"
    SIGNALED = "signaled"
    POISONED = "poisoned"
    RECYCLED = "recycled"


class VirtualFence:
    """One signal/wait pair occupying a slot of the virtual fence table."""

    __slots__ = ("index", "state", "_event", "waiters", "owner", "poison_acked", "first_wait_at", "_sim")

    def __init__(self, sim: Simulator, index: int):
        self.index = index
        self.state = FenceState.PENDING
        self._event = SimEvent(sim, name=f"fence[{index}]")
        self.waiters = 0
        #: Virtual device whose command stream will signal this fence —
        #: stamped at allocation time by the emulator so crash recovery can
        #: find the orphans of a dead device.
        self.owner: Optional[str] = None
        #: A poisoned index may only be recycled after the recovery
        #: coordinator acknowledges the poison (reuse-before-ack would let a
        #: stale guest-side status read observe a fresh fence's slot).
        self.poison_acked = False
        self.first_wait_at: Optional[float] = None
        self._sim = sim

    def signal(self) -> None:
        """Mark the preceding operations complete; wakes every waiter.

        Signalling a POISONED fence is a silent no-op: the signal command of
        a crashed device may still flow through the (reset) command queue
        after recovery poisoned the fence, and that zombie echo must not
        double-fire the event nor crash the fresh executor.
        """
        if self.state is FenceState.POISONED:
            return
        if self.state is not FenceState.PENDING:
            raise FenceError(f"fence {self.index} signalled in state {self.state.value}")
        self.state = FenceState.SIGNALED
        self._event.fire(None)

    def poison(self) -> bool:
        """Cancel a pending fence: waiters wake with :data:`POISONED_STATUS`.

        Returns ``True`` if the fence transitioned to POISONED, ``False`` if
        it had already signalled (its happens-before obligation was met, so
        there is nothing to cancel). Poisoning an already-poisoned fence is
        idempotent.
        """
        if self.state is FenceState.POISONED:
            return True
        if self.state is not FenceState.PENDING:
            return False
        self.state = FenceState.POISONED
        self._event.fire(POISONED_STATUS)
        return True

    def wait(self) -> Waitable:
        """Waitable that fires once the paired signal has happened.

        Waiting on a RECYCLED fence is legal and fires immediately: a fence
        is only ever recycled after it signalled, so its happens-before
        obligation is already discharged (this is what makes index
        recycling safe in §4). Waiters of a POISONED fence resume with
        :data:`POISONED_STATUS` instead of deadlocking.
        """
        self.waiters += 1
        if self.first_wait_at is None:
            self.first_wait_at = self._sim.now
        return self._event

    @property
    def signaled(self) -> bool:
        return self.state is FenceState.SIGNALED

    @property
    def poisoned(self) -> bool:
        return self.state is FenceState.POISONED

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<VirtualFence #{self.index} {self.state.value}>"


class VirtualFenceTable:
    """The page-limited, guest-shared table of virtual fences.

    Allocation hands out fresh indices until the free supply runs low, then
    recycles signalled fences (oldest first), mirroring §4. Allocating with
    every slot pending raises :class:`FenceTableFullError` — back-pressure
    the flow-control layer is expected to prevent.
    """

    def __init__(self, sim: Simulator, capacity: int = FENCE_TABLE_CAPACITY):
        if capacity <= 0:
            raise FenceError("fence table capacity must be positive")
        self._sim = sim
        self.capacity = capacity
        self._slots: Dict[int, VirtualFence] = {}
        self._free: List[int] = list(range(capacity - 1, -1, -1))  # pop() -> 0,1,2...
        self.allocated_total = 0
        self.recycled_total = 0
        self.poisoned_total = 0

    def allocate(self) -> VirtualFence:
        """Allocate a fence slot, recycling signalled entries when low."""
        if len(self._free) < max(1, int(self.capacity * RECYCLE_LOW_WATER)):
            self._recycle_signaled()
        if not self._free:
            raise FenceTableFullError(
                f"all {self.capacity} fence slots pending — guest is outrunning the host"
            )
        index = self._free.pop()
        fence = VirtualFence(self._sim, index)
        self._slots[index] = fence
        self.allocated_total += 1
        return fence

    def get(self, index: int) -> VirtualFence:
        try:
            return self._slots[index]
        except KeyError:
            raise FenceError(f"no live fence at index {index}") from None

    def poison_owned(self, owner: str) -> List[VirtualFence]:
        """Poison every pending fence stamped with ``owner``; returns them.

        Called by the recovery coordinator when a virtual device crashes:
        the device's signal commands will never execute, so its outstanding
        fences must release their waiters with a poisoned status.
        """
        poisoned: List[VirtualFence] = []
        for index in sorted(self._slots):
            fence = self._slots[index]
            if fence.owner == owner and fence.state is FenceState.PENDING:
                fence.poison()
                self.poisoned_total += 1
                poisoned.append(fence)
        return poisoned

    def acknowledge_poison(self, index: int) -> None:
        """Mark a poisoned index safe to recycle (recovery completed).

        Reclaiming a poisoned index before acknowledgement would hand a slot
        whose guest-visible status still reads "poisoned" to a fresh fence —
        the reuse-before-signal class of bug this gate exists to prevent.
        """
        fence = self.get(index)
        if fence.state is not FenceState.POISONED:
            raise FenceError(
                f"fence {index} is {fence.state.value}, not poisoned — nothing to acknowledge"
            )
        fence.poison_acked = True

    def _recycle_signaled(self) -> None:
        """Reclaim indices whose fences have signalled (status query done).

        Poisoned indices are reclaimed only after the recovery coordinator
        acknowledged the poison; un-acked poisoned fences stay pinned in the
        table (and keep their guest-visible status readable) even under
        allocation pressure.
        """
        for index in sorted(self._slots):
            fence = self._slots[index]
            if fence.state is FenceState.SIGNALED or (
                fence.state is FenceState.POISONED and fence.poison_acked
            ):
                fence.state = FenceState.RECYCLED
                del self._slots[index]
                self._free.append(index)
                self.recycled_total += 1

    @property
    def live_fences(self) -> int:
        return len(self._slots)

    @property
    def shared_bytes(self) -> int:
        """Guest-shared footprint — bounded by one page by construction."""
        return self.capacity * FENCE_ENTRY_BYTES

    def snapshot_state(self) -> Dict[str, Any]:
        """Deterministic, JSON-able image of the table (checkpointing)."""
        return {
            "capacity": self.capacity,
            "allocated_total": self.allocated_total,
            "recycled_total": self.recycled_total,
            "poisoned_total": self.poisoned_total,
            "free": sorted(self._free),
            "slots": {
                str(index): {
                    "state": fence.state.value,
                    "waiters": fence.waiters,
                    "owner": fence.owner,
                    "poison_acked": fence.poison_acked,
                    "first_wait_at": fence.first_wait_at,
                }
                for index, fence in sorted(self._slots.items())
            },
        }

    def restore_state(self, state: Dict[str, Any]) -> None:
        """Reinstate table occupancy from :meth:`snapshot_state` output.

        Restored SIGNALED/POISONED fences have already-fired events so late
        waiters resume immediately, exactly as in the captured run.
        """
        if state["capacity"] != self.capacity:
            raise FenceError(
                f"snapshot capacity {state['capacity']} != table capacity {self.capacity}"
            )
        self.allocated_total = state["allocated_total"]
        self.recycled_total = state["recycled_total"]
        self.poisoned_total = state.get("poisoned_total", 0)
        self._free = sorted(state["free"], reverse=True)
        self._slots = {}
        for key, slot in state["slots"].items():
            index = int(key)
            fence = VirtualFence(self._sim, index)
            fence.state = FenceState(slot["state"])
            fence.waiters = slot["waiters"]
            fence.owner = slot["owner"]
            fence.poison_acked = slot["poison_acked"]
            fence.first_wait_at = slot["first_wait_at"]
            if fence.state is FenceState.SIGNALED:
                fence._event.fire(None)
            elif fence.state is FenceState.POISONED:
                fence._event.fire(POISONED_STATUS)
            self._slots[index] = fence
        return None


class PhysicalFenceTable:
    """Per-physical-device map of in-flight synchronization primitives.

    In the real system these are ``glFenceSync`` objects and driver events;
    here a primitive is the :class:`~repro.sim.primitives.SimEvent` that a
    host executor fires when a device operation retires. The table exists
    so status queries (`aggregate` in §3.4) have one place to look.
    """

    def __init__(self, device_name: str):
        self.device_name = device_name
        self._primitives: Dict[int, SimEvent] = {}
        self._next_id = 0

    def insert(self, completion: SimEvent) -> int:
        """Track a device-specific primitive; returns its slot id."""
        slot = self._next_id
        self._next_id += 1
        self._primitives[slot] = completion
        return slot

    def is_complete(self, slot: int) -> bool:
        try:
            return self._primitives[slot].fired
        except KeyError:
            raise FenceError(
                f"device {self.device_name!r} has no primitive #{slot}"
            ) from None

    def reap(self) -> int:
        """Drop completed primitives; returns how many were reaped."""
        done = [slot for slot, ev in self._primitives.items() if ev.fired]
        for slot in done:
            del self._primitives[slot]
        return len(done)

    @property
    def outstanding(self) -> int:
        return len(self._primitives)
