"""Directed hypergraphs: the data-flow representation of §3.2.

The paper records data flows with *hyperedges* because a dependency may
involve more than two devices ("a write in camera is accompanied by two
reads in ISP and GPU"). A directed hyperedge here has a tail set (writers —
in practice a single source) and a head set (readers), and carries an
arbitrary statistics payload attached by the twin-hypergraph layer.

Nodes (device names) are known at "compile time" — registered when the
graph is built — while hyperedges are constructed dynamically at run time
as flows are observed, exactly as described in the paper.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, Iterable, Iterator, List, Optional, Tuple

from repro.errors import ConfigurationError

EdgeKey = Tuple[FrozenSet[str], FrozenSet[str]]


def edge_key(sources: Iterable[str], destinations: Iterable[str]) -> EdgeKey:
    """Canonical dictionary key for a (sources → destinations) hyperedge."""
    return (frozenset(sources), frozenset(destinations))


def serialize_edge_key(key: EdgeKey) -> List[List[str]]:
    """Deterministic JSON-able form of an :data:`EdgeKey` (checkpointing)."""
    return [sorted(key[0]), sorted(key[1])]


def deserialize_edge_key(data: Iterable[Iterable[str]]) -> EdgeKey:
    """Inverse of :func:`serialize_edge_key`."""
    sources, destinations = data
    return (frozenset(sources), frozenset(destinations))


class Hyperedge:
    """One data flow: source device(s) → destination device(s) plus stats.

    ``stats`` is a plain dict owned by the layer that created the edge (the
    virtual layer stores slack-interval predictors; the physical layer
    stores size/bandwidth predictors and R/W successor history).
    """

    __slots__ = ("sources", "destinations", "stats", "observations")

    def __init__(self, sources: FrozenSet[str], destinations: FrozenSet[str]):
        if not sources:
            raise ConfigurationError("hyperedge needs at least one source")
        if not destinations:
            raise ConfigurationError("hyperedge needs at least one destination")
        self.sources = sources
        self.destinations = destinations
        self.stats: Dict[str, Any] = {}
        self.observations = 0

    @property
    def key(self) -> EdgeKey:
        return (self.sources, self.destinations)

    def touch(self) -> None:
        """Count one observation of this flow."""
        self.observations += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        src = "+".join(sorted(self.sources))
        dst = "+".join(sorted(self.destinations))
        return f"<Hyperedge {src}->{dst} obs={self.observations}>"


class DirectedHypergraph:
    """A set of named nodes and dynamically constructed hyperedges."""

    def __init__(self, name: str):
        self.name = name
        self._nodes: set = set()
        self._edges: Dict[EdgeKey, Hyperedge] = {}

    # -- nodes -------------------------------------------------------------
    def add_node(self, node: str) -> None:
        self._nodes.add(node)

    def has_node(self, node: str) -> bool:
        return node in self._nodes

    @property
    def nodes(self) -> FrozenSet[str]:
        return frozenset(self._nodes)

    # -- edges -------------------------------------------------------------
    def edge(self, sources: Iterable[str], destinations: Iterable[str]) -> Hyperedge:
        """Find or create the hyperedge for a flow; validates node names."""
        key = edge_key(sources, destinations)
        existing = self._edges.get(key)
        if existing is not None:
            return existing
        for node in key[0] | key[1]:
            if node not in self._nodes:
                raise ConfigurationError(
                    f"hypergraph {self.name!r} has no node {node!r}"
                )
        edge = Hyperedge(*key)
        self._edges[key] = edge
        return edge

    def get_edge(self, key: EdgeKey) -> Optional[Hyperedge]:
        return self._edges.get(key)

    def edges_from(self, source: str) -> List[Hyperedge]:
        """All hyperedges with ``source`` in their tail set."""
        return [e for e in self._edges.values() if source in e.sources]

    def has_edge(self, key: EdgeKey) -> bool:
        return key in self._edges

    def edge_keys(self) -> List[EdgeKey]:
        """All live edge keys (insertion order)."""
        return list(self._edges)

    def remove_edges_touching(self, node: str) -> List[EdgeKey]:
        """Drop every hyperedge involving ``node``; returns the removed keys.

        Used by crash recovery to forget the learned flow history of a
        re-admitted virtual device (its post-recovery behaviour should be
        re-learned from scratch, not predicted from pre-crash patterns).
        """
        doomed = [
            key for key, e in self._edges.items()
            if node in e.sources or node in e.destinations
        ]
        for key in doomed:
            del self._edges[key]
        return doomed

    def __len__(self) -> int:
        return len(self._edges)

    def __iter__(self) -> Iterator[Hyperedge]:
        return iter(self._edges.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<DirectedHypergraph {self.name!r} nodes={len(self._nodes)} edges={len(self._edges)}>"
