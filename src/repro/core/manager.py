"""The SVM Manager (§3.2): unified lifecycle and accounting for SVM regions.

The manager implements the shared-memory interface of Figure 3 on the host
side: 64-bit IDs, lazy per-location backing allocation, a host-side
hashtable of complete metadata, and the twin-hypergraph statistics feed.
Virtual devices identify regions purely by ID — the unified representation
that lets coherence run directly between devices without guest involvement.

Metric definitions (shared with §5.2):

* **access latency** — time a ``begin_access`` call blocks the guest
  caller, including protocol waits and the page-mapping cost;
* **slack interval** — host write retirement → next cross-device
  ``begin_access`` on the same region;
* **coherence cost** — duration of one maintenance (traced by the
  protocols as ``coherence.maintenance`` records).
"""

from __future__ import annotations

from typing import Any, Dict, Generator, Optional

from repro.core.coherence import CoherenceProtocol
from repro.core.degradation import DegradationController
from repro.core.region import AccessUsage, SvmRegion
from repro.core.twin import TwinHypergraphs
from repro.errors import SvmError, UnknownRegionError
from repro.hw.memory import MemoryPool
from repro.obs import DISABLED, Observability
from repro.sim import Simulator, Timeout
from repro.sim.tracing import TraceLog
from repro.units import VSYNC_PERIOD_MS

if False:  # pragma: no cover - typing only
    from repro.core.prefetch import PrefetchEngine


class SvmManager:
    """Host-side manager for every SVM region of one emulator instance."""

    def __init__(
        self,
        sim: Simulator,
        twin: TwinHypergraphs,
        protocol: CoherenceProtocol,
        location_pools: Dict[str, MemoryPool],
        trace: TraceLog,
        page_map_cost: float,
        extra_access_overhead: float = 0.0,
        engine: Optional["PrefetchEngine"] = None,
        chain_reaction_threshold: Optional[float] = 2.0,
        chain_reaction_vdevs: Optional[set] = None,
        degradation: Optional[DegradationController] = None,
        obs: Optional[Observability] = None,
    ):
        self._obs = obs if obs is not None else DISABLED
        self._sim = sim
        self.twin = twin
        self.protocol = protocol
        self.engine = engine
        self.degradation = degradation
        self._pools = dict(location_pools)
        self._trace = trace
        self.page_map_cost = page_map_cost
        self.extra_access_overhead = extra_access_overhead
        self.chain_reaction_threshold = chain_reaction_threshold
        # Only VSync-scheduled render/composition threads suffer the
        # missed-frame chain reaction; pipeline worker threads just absorb
        # the delay into their period.
        self.chain_reaction_vdevs = (
            chain_reaction_vdevs if chain_reaction_vdevs is not None else {"gpu", "display"}
        )
        self.chain_reactions = 0
        self._regions: Dict[int, SvmRegion] = {}
        self._next_id = 1
        self.allocs_total = 0
        self.frees_total = 0
        # Optional runtime invariant auditor (see repro.recovery.audit).
        # When installed it gets an inline visibility check on every read
        # access, in addition to its periodic sim-hook sweep.
        self.auditor = None

    # -- lifecycle (alloc / free of Figure 3) ------------------------------------
    def alloc(self, size: int) -> int:
        """Allocate a region; returns its unique 64-bit ID."""
        region = SvmRegion(self._next_id, size)
        self._next_id += 1
        self._regions[region.region_id] = region
        self.twin.register_region(region.region_id)
        self.allocs_total += 1
        self._trace.record(self._sim.now, "svm.alloc", region=region.region_id, size=size)
        return region.region_id

    def free(self, region_id: int) -> None:
        """Free a region; open access brackets make this an error."""
        region = self.get(region_id)
        if region.open_accessors:
            raise SvmError(
                f"freeing region #{region_id} with open accesses: "
                f"{sorted(region.open_accessors)}"
            )
        region.freed = True
        region.release_backing()
        del self._regions[region_id]
        self.twin.drop_region(region_id)
        self.frees_total += 1
        self._trace.record(self._sim.now, "svm.free", region=region_id)

    def get(self, region_id: int) -> SvmRegion:
        try:
            return self._regions[region_id]
        except KeyError:
            raise UnknownRegionError(f"unknown SVM region #{region_id}") from None

    @property
    def live_regions(self) -> int:
        return len(self._regions)

    # -- access brackets (begin_access / end_access of Figure 3) -----------------
    def begin_access(
        self,
        vdev: str,
        region_id: int,
        usage: AccessUsage,
        location: str,
        nbytes: Optional[int] = None,
    ) -> Generator[Any, Any, float]:
        """Process: open an access; returns the blocking latency in ms.

        Lazy backing allocation happens here — the first access reveals
        which location actually needs memory (§3.2).
        """
        region = self.get(region_id)
        window = nbytes if nbytes is not None else region.size
        region.open_access(vdev, usage, window, self._sim.now)
        start = self._sim.now
        # Slack is defined from write retirement to access *arrival*, so
        # sample it before the mapping work consumes time.
        slack = self._slack_for(region) if usage.reads else None
        access_span = self._obs.tracer.begin(
            "svm.begin_access", vdev, cat="svm", flow=region.flow,
            region=region_id, usage=usage.value, bytes=window,
        )

        mapping_cost = self.page_map_cost + self.extra_access_overhead
        if mapping_cost > 0:
            yield Timeout(mapping_cost)
        self._ensure_backing(region, location)

        if usage.reads:
            if self.engine is not None:
                self.engine.on_read(region, vdev, location, slack=slack)
            self.twin.on_read(region_id, vdev, location, slack)
            if slack is not None:
                self._trace.record(
                    self._sim.now, "svm.slack", region=region_id, slack=slack
                )
            blocked = yield from self.protocol.begin_access_read(region, vdev, location)
            if self.auditor is not None:
                # "No access observes stale bytes": once the protocol has
                # admitted the read, the reader's location must hold an
                # up-to-date copy. Checked here (not in the periodic sweep)
                # because mid-maintenance states are legal between accesses.
                self.auditor.check_read_visibility(region, vdev, location)
            # The chain reaction of §3.3: mobile services schedule around
            # the assumption that SVM access is instantaneous. An
            # unexpected multi-ms block makes the caller miss its frame
            # deadline and wait for the next VSync ("even a slightly longer
            # SVM access latency (e.g., 2 ms) ... causes apps to miss the
            # current frame deadline and wait for the next").
            if (
                self.chain_reaction_threshold is not None
                and vdev in self.chain_reaction_vdevs
                and blocked is not None
                and blocked > self.chain_reaction_threshold
            ):
                next_tick = (int(self._sim.now / VSYNC_PERIOD_MS) + 1) * VSYNC_PERIOD_MS
                self.chain_reactions += 1
                yield Timeout(next_tick - self._sim.now)

        if usage.writes:
            # Host retirement does the invalidation; the flag marks that the
            # newest data is still in flight so readers order behind it.
            region.write_in_flight = True

        latency = self._sim.now - start
        self._obs.tracer.end(access_span, latency=latency)
        self._obs.registry.histogram("svm.access_latency_ms", vdev=vdev).observe(latency)
        if self._trace.wants("svm.access_latency"):
            extra = {}
            if self.degradation is not None and self.degradation.degraded:
                # Tag accesses made under degraded coherence so metrics can
                # attribute latency spikes to the fault, not the workload.
                extra["degraded_level"] = self.degradation.level
            self._trace.record(
                self._sim.now,
                "svm.access_latency",
                region=region_id,
                vdev=vdev,
                usage=usage.value,
                latency=latency,
                bytes=window,
                **extra,
            )
        return latency

    def end_access(self, vdev: str, region_id: int) -> None:
        """Close an access bracket opened by ``begin_access``."""
        region = self.get(region_id)
        opened = region.close_access(vdev)
        if self._trace.wants("svm.access_end"):
            self._trace.record(
                self._sim.now,
                "svm.access_end",
                region=region_id,
                vdev=vdev,
                held=self._sim.now - opened.start_time,
            )

    def _slack_for(self, region: SvmRegion) -> Optional[float]:
        """*Natural* slack: write retirement → read arrival, minus any
        compensation the driver injected for this generation.

        Without the discount the predictor would chase its own tail: the
        driver blocks to stretch a short slack, the stretched slack is
        observed, the predicted compensation shrinks, the next read blocks
        again — an oscillation instead of Figure 8's steady state.
        """
        if region.write_in_flight or region.write_complete_time is None:
            return None
        observed = self._sim.now - region.write_complete_time
        return max(0.0, observed - region.applied_compensation)

    def _ensure_backing(self, region: SvmRegion, location: str) -> None:
        if location in region.backing:
            return
        pool = self._pools.get(location)
        if pool is None:
            return  # pseudo-locations without a modelled pool
        region.backing[location] = pool.allocate(region.size, tag=f"svm#{region.region_id}")

    # -- host-executor hooks ------------------------------------------------------
    def host_write_retired(
        self, region_id: int, vdev: str, location: str, nbytes: int
    ) -> Generator[Any, Any, None]:
        """Process (executor context): a write op finished on the host.

        Performs the invalidation, timestamps the write for slack
        measurement, feeds the twin hypergraphs, and runs the protocol's
        after-write hook (baseline flush, or vSoC prefetch launch).
        """
        region = self.get(region_id)
        region.note_write(vdev, location, nbytes)
        region.write_in_flight = False
        region.write_complete_time = self._sim.now
        self._ensure_backing(region, location)
        self.twin.on_write(region_id, vdev, location, nbytes)
        self._trace.record(
            self._sim.now, "svm.write_retired", region=region_id, vdev=vdev, bytes=nbytes
        )
        self._obs.tracer.instant(
            "svm.write_retired", vdev, cat="svm", flow=region.flow,
            region=region_id, bytes=nbytes,
        )
        yield from self.protocol.executor_after_write(region, vdev, location)

    def host_before_read(
        self, region_id: int, vdev: str, location: str
    ) -> Generator[Any, Any, None]:
        """Process (executor context): coherence net before a device read."""
        region = self.get(region_id)
        self._ensure_backing(region, location)
        yield from self.protocol.executor_before_read(region, vdev, location)

    # -- checkpoint / restore (repro.recovery.snapshot) ---------------------------
    def snapshot_state(self) -> Dict[str, Any]:
        """Deterministic, JSON-able image of all SVM bookkeeping.

        Covers the region hashtable (full coherence state per region), the
        ID allocator, and lifetime counters. Fences and the twin
        hypergraphs snapshot themselves; :class:`repro.recovery.snapshot`
        stitches the pieces into one checksummed document.
        """
        return {
            "next_id": self._next_id,
            "allocs_total": self.allocs_total,
            "frees_total": self.frees_total,
            "chain_reactions": self.chain_reactions,
            "regions": {
                str(region_id): region.state_dict()
                for region_id, region in sorted(self._regions.items())
            },
        }

    def restore_state(self, state: Dict[str, Any], fence_table: Any = None) -> None:
        """Reinstate SVM state captured by :meth:`snapshot_state`.

        Intended for a quiescent manager (fresh build or post-run): regions
        are rebuilt from scratch, backing memory is re-allocated from the
        location pools, and ``write_fence`` links are re-established through
        ``fence_table`` (which must already be restored) when given.
        """
        for region in self._regions.values():
            region.release_backing()
        self._regions = {}
        self._next_id = state["next_id"]
        self.allocs_total = state["allocs_total"]
        self.frees_total = state["frees_total"]
        self.chain_reactions = state["chain_reactions"]
        for key, region_state in state["regions"].items():
            region = SvmRegion(int(key), region_state["size"])
            region.load_state(region_state)
            for location in region_state["backing"]:
                self._ensure_backing(region, location)
            fence_index = region_state["write_fence"]
            if fence_index is not None and fence_table is not None:
                region.write_fence = fence_table._slots.get(fence_index)
            self._regions[region.region_id] = region

    # -- §5.2 overhead accounting -------------------------------------------------
    def memory_overhead_bytes(self) -> int:
        """Framework metadata footprint (paper: at most 3.1 MiB)."""
        per_region_metadata = 160
        return self.twin.memory_overhead_bytes() + len(self._regions) * per_region_metadata
