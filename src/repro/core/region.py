"""SVM regions: the unit of shared-virtual-memory management.

An :class:`SvmRegion` corresponds to one allocation through the mobile
shared-memory interface (Figure 3 of the paper). Following §3.2:

* every region gets a unique 64-bit ID at allocation time;
* backing memory is **lazily** allocated per *location* on first access,
  because the accessing device is only known then;
* the guest caches only a sliver of metadata (the size), while the complete
  metadata and resource handles live in the host-side manager.

Locations
---------
Coherence state is tracked per *location*, not per virtual device: a
location is either a physical device's local memory (``"gpu"``), the host's
main memory (``"host"``), or — for the guest-memory architecture of
baseline emulators (§2.2) — the guest's RAM (``"guest"``). The set
``valid_locations`` names every location holding an up-to-date copy; a
write shrinks it to the writer's location (invalidation), a coherence copy
grows it.
"""

from __future__ import annotations

import enum
from typing import Dict, Optional, Set, TYPE_CHECKING

from repro.errors import AccessStateError, SvmError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.hw.device import PhysicalDevice
    from repro.hw.memory import MemoryRegion
    from repro.sim.kernel import Process


#: Pseudo-location: the host's main memory (devices without local memory).
HOST_LOCATION = "host"
#: Pseudo-location: guest RAM — only used by the baseline architecture.
GUEST_LOCATION = "guest"


def location_of(device: "PhysicalDevice") -> str:
    """Coherence location of a physical device.

    Devices with dedicated local memory (discrete GPUs) are their own
    location; everything else reads and writes host main memory directly.
    """
    return device.name if device.local_memory is not None else HOST_LOCATION


class AccessUsage(enum.Enum):
    """The ``usage`` argument of ``begin_access`` (Figure 3): RO / WO / RW."""

    READ = "ro"
    WRITE = "wo"
    READ_WRITE = "rw"

    @property
    def writes(self) -> bool:
        return self in (AccessUsage.WRITE, AccessUsage.READ_WRITE)

    @property
    def reads(self) -> bool:
        return self in (AccessUsage.READ, AccessUsage.READ_WRITE)


class _OpenAccess:
    """Bookkeeping for one in-progress begin_access/end_access bracket."""

    __slots__ = ("vdev", "usage", "nbytes", "start_time")

    def __init__(self, vdev: str, usage: AccessUsage, nbytes: int, start_time: float):
        self.vdev = vdev
        self.usage = usage
        self.nbytes = nbytes
        self.start_time = start_time


class SvmRegion:
    """One shared-virtual-memory region and its coherence state.

    Attributes
    ----------
    region_id:
        The unique 64-bit handle (§3.2).
    size:
        Region size in bytes; accesses may touch a smaller dirty window.
    valid_locations:
        Locations currently holding an up-to-date copy.
    last_writer_vdev / last_writer_location:
        Provenance of the newest data — the source coherence copies pull
        from, and the signal end of the region's implicit happens-before
        edge.
    write_complete_time:
        Host-side completion time of the newest write; slack intervals are
        measured from here (§2.3).
    write_fence:
        Fence signalled when the newest write's host execution finished
        (set by the emulator when fences are enabled).
    pending_prefetch:
        The in-flight prefetch process for this region, if any. A reader
        arriving early joins it instead of redoing the copy.
    """

    def __init__(self, region_id: int, size: int):
        if size <= 0:
            raise SvmError(f"region size must be positive, got {size}")
        self.region_id = region_id
        self.size = size
        self.freed = False

        self.valid_locations: Set[str] = set()
        self.last_writer_vdev: Optional[str] = None
        self.last_writer_location: Optional[str] = None
        self.dirty_bytes: int = size
        self.write_complete_time: Optional[float] = None

        self.write_fence = None  # type: Optional[object]
        self.write_in_flight = False
        self.pending_writer_location: Optional[str] = None
        self.pending_prefetch: Optional["Process"] = None
        self.prefetch_targets: Set[str] = set()
        self.prefetch_predicted_vdevs: Optional[Set[str]] = None
        self.prefetch_vkey = None
        self.prefetch_predicted_slack: Optional[float] = None
        self.pending_compensation = 0.0
        # Causal-trace flow id of the frame currently moving through this
        # region (0 = none). Stamped by the emulator at stage dispatch so
        # coherence/prefetch spans inherit the frame's flow.
        self.flow = 0
        self.applied_compensation = 0.0
        self.last_flush_duration = 0.0

        self.backing: Dict[str, "MemoryRegion"] = {}
        self._open: Dict[str, _OpenAccess] = {}

        # lifetime statistics (feed the measurement experiments)
        self.total_accesses = 0
        self.writer_vdevs: Set[str] = set()
        self.reader_vdevs: Set[str] = set()

    # -- access bracket ----------------------------------------------------
    def open_access(self, vdev: str, usage: AccessUsage, nbytes: int, now: float) -> None:
        """Record a begin_access; nested brackets from one vdev are invalid."""
        if self.freed:
            raise SvmError(f"access to freed region #{self.region_id}")
        if nbytes <= 0 or nbytes > self.size:
            raise SvmError(
                f"access window {nbytes}B invalid for region of {self.size}B"
            )
        if vdev in self._open:
            raise AccessStateError(
                f"vdev {vdev!r} called begin_access twice on region #{self.region_id}"
            )
        self._open[vdev] = _OpenAccess(vdev, usage, nbytes, now)
        self.total_accesses += 1
        if usage.writes:
            self.writer_vdevs.add(vdev)
        if usage.reads:
            self.reader_vdevs.add(vdev)

    def close_access(self, vdev: str) -> _OpenAccess:
        """Record an end_access; must pair a prior begin_access."""
        try:
            return self._open.pop(vdev)
        except KeyError:
            raise AccessStateError(
                f"vdev {vdev!r} called end_access without begin_access on "
                f"region #{self.region_id}"
            ) from None

    @property
    def open_accessors(self) -> Set[str]:
        return set(self._open)

    # -- coherence state ------------------------------------------------------
    def note_write(self, vdev: str, location: str, nbytes: int) -> None:
        """Invalidate all other copies: ``location`` now holds the only one."""
        self.valid_locations = {location}
        self.last_writer_vdev = vdev
        self.last_writer_location = location
        self.dirty_bytes = nbytes
        self.pending_prefetch = None
        self.prefetch_targets = set()
        self.prefetch_predicted_vdevs = None
        self.prefetch_vkey = None
        self.prefetch_predicted_slack = None
        self.pending_compensation = 0.0

    def note_copy(self, dst_location: str) -> None:
        """A coherence copy landed an up-to-date replica at ``dst_location``."""
        self.valid_locations.add(dst_location)

    def is_valid_at(self, location: str) -> bool:
        """True when ``location`` can read without coherence maintenance.

        A never-written region is trivially coherent everywhere (reads see
        zero-fill, as with freshly mmapped pages).
        """
        if not self.valid_locations:
            return True
        return location in self.valid_locations

    # -- checkpointing -----------------------------------------------------
    def state_dict(self) -> Dict[str, object]:
        """Deterministic, JSON-able image of the region's coherence state.

        Live object handles are reduced to stable identifiers: the write
        fence to its table index, the pending-prefetch process to a boolean,
        backing memory to the list of locations holding it. The restore path
        re-links fences through the fence table and re-allocates backing
        lazily, so nothing here depends on object identity.
        """
        from repro.core.hypergraph import serialize_edge_key

        return {
            "region_id": self.region_id,
            "size": self.size,
            "freed": self.freed,
            "valid_locations": sorted(self.valid_locations),
            "last_writer_vdev": self.last_writer_vdev,
            "last_writer_location": self.last_writer_location,
            "dirty_bytes": self.dirty_bytes,
            "write_complete_time": self.write_complete_time,
            "write_fence": None if self.write_fence is None else self.write_fence.index,
            "write_in_flight": self.write_in_flight,
            "pending_writer_location": self.pending_writer_location,
            "pending_prefetch": self.pending_prefetch is not None,
            "prefetch_targets": sorted(self.prefetch_targets),
            "prefetch_predicted_vdevs": (
                None
                if self.prefetch_predicted_vdevs is None
                else sorted(self.prefetch_predicted_vdevs)
            ),
            "prefetch_vkey": (
                None if self.prefetch_vkey is None else serialize_edge_key(self.prefetch_vkey)
            ),
            "prefetch_predicted_slack": self.prefetch_predicted_slack,
            "pending_compensation": self.pending_compensation,
            "flow": self.flow,
            "applied_compensation": self.applied_compensation,
            "last_flush_duration": self.last_flush_duration,
            "backing": sorted(self.backing),
            "open": {
                vdev: {
                    "usage": acc.usage.value,
                    "nbytes": acc.nbytes,
                    "start_time": acc.start_time,
                }
                for vdev, acc in sorted(self._open.items())
            },
            "total_accesses": self.total_accesses,
            "writer_vdevs": sorted(self.writer_vdevs),
            "reader_vdevs": sorted(self.reader_vdevs),
        }

    def load_state(self, state: Dict[str, object]) -> None:
        """Reinstate state captured by :meth:`state_dict`.

        ``write_fence`` is restored as ``None`` here; the manager re-links
        it via the fence table after all regions exist. ``pending_prefetch``
        processes are not resurrected — restore targets a quiescent
        emulator, where the deterministic-replay layer reconstructs live
        continuations (see :mod:`repro.recovery.snapshot`).
        """
        from repro.core.hypergraph import deserialize_edge_key

        self.freed = bool(state["freed"])
        self.valid_locations = set(state["valid_locations"])
        self.last_writer_vdev = state["last_writer_vdev"]
        self.last_writer_location = state["last_writer_location"]
        self.dirty_bytes = state["dirty_bytes"]
        self.write_complete_time = state["write_complete_time"]
        self.write_fence = None
        self.write_in_flight = bool(state["write_in_flight"])
        self.pending_writer_location = state["pending_writer_location"]
        self.pending_prefetch = None
        self.prefetch_targets = set(state["prefetch_targets"])
        predicted = state["prefetch_predicted_vdevs"]
        self.prefetch_predicted_vdevs = None if predicted is None else set(predicted)
        vkey = state["prefetch_vkey"]
        self.prefetch_vkey = None if vkey is None else deserialize_edge_key(vkey)
        self.prefetch_predicted_slack = state["prefetch_predicted_slack"]
        self.pending_compensation = state["pending_compensation"]
        self.flow = state["flow"]
        self.applied_compensation = state["applied_compensation"]
        self.last_flush_duration = state["last_flush_duration"]
        self._open = {
            vdev: _OpenAccess(
                vdev, AccessUsage(acc["usage"]), acc["nbytes"], acc["start_time"]
            )
            for vdev, acc in state["open"].items()
        }
        self.total_accesses = state["total_accesses"]
        self.writer_vdevs = set(state["writer_vdevs"])
        self.reader_vdevs = set(state["reader_vdevs"])

    # -- lifecycle ---------------------------------------------------------
    def release_backing(self) -> None:
        """Free all lazily allocated backing memory."""
        for backing in self.backing.values():
            if not backing.freed:
                backing.free()
        self.backing.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<SvmRegion #{self.region_id} {self.size}B "
            f"valid={sorted(self.valid_locations)} writer={self.last_writer_vdev}>"
        )
