"""Graceful-degradation ladder for coherence maintenance.

The paper's §3.3 suspension rule reacts to *prediction* failures; this
module generalizes it to *transport* failures. When coherence copies keep
failing (faulty DMA, saturated links, wedged devices), the stack steps down
a ladder of progressively cheaper-to-trust strategies:

* level 0 — ``prefetched``: the optimized path; the prefetch engine hides
  coherence maintenance behind predicted accesses.
* level 1 — ``on-demand``: prefetch is disabled; every access pays a
  synchronous unified-SVM copy (the paper's non-prefetch baseline).
* level 2 — ``guest-roundtrip``: even unified copies are abandoned; data
  moves through guest memory with the legacy 4-copy round-trip, the most
  conservative path §2.3 measures.

A :class:`DegradationController` owns the current level. Copy paths report
outcomes via :meth:`note_success` / :meth:`note_failure`; after
``failure_threshold`` consecutive failures the ladder escalates (trace kind
``coherence.degrade``), and after ``reprobe_after_ms`` of quiet it offers
the next-better level as a probe — one success there restores it (trace
kind ``coherence.restore``).
"""

from __future__ import annotations

import math
from typing import Optional

from repro.errors import ConfigurationError
from repro.sim import Simulator
from repro.sim.tracing import TraceLog

LEVEL_PREFETCHED = 0
LEVEL_ON_DEMAND = 1
LEVEL_GUEST_ROUNDTRIP = 2

LEVEL_NAMES = {
    LEVEL_PREFETCHED: "prefetched",
    LEVEL_ON_DEMAND: "on-demand",
    LEVEL_GUEST_ROUNDTRIP: "guest-roundtrip",
}


class DegradationController:
    """Tracks the coherence degradation level and when to re-probe.

    Parameters
    ----------
    failure_threshold:
        Consecutive copy failures (after retries) before escalating one
        level — mirrors the paper's 3-misprediction suspension rule.
    reprobe_after_ms:
        Quiet time after the last failure before the next-better level is
        offered as a probe via :meth:`plan_level`.
    """

    def __init__(
        self,
        sim: Simulator,
        trace: Optional[TraceLog] = None,
        failure_threshold: int = 3,
        reprobe_after_ms: float = 250.0,
        name: str = "coherence",
    ):
        if failure_threshold < 1:
            raise ConfigurationError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if not math.isfinite(reprobe_after_ms) or reprobe_after_ms <= 0:
            raise ConfigurationError(
                f"reprobe_after_ms must be finite and > 0, got {reprobe_after_ms}"
            )
        self._sim = sim
        self.trace = trace
        self.failure_threshold = failure_threshold
        self.reprobe_after_ms = reprobe_after_ms
        self.name = name
        self.level = LEVEL_PREFETCHED
        self._consecutive_failures = 0
        self._degraded_at: Optional[float] = None
        self.degrades = 0
        self.restores = 0
        self.failures_total = 0

    # -- planning -----------------------------------------------------------
    @property
    def degraded(self) -> bool:
        return self.level > LEVEL_PREFETCHED

    def plan_level(self) -> int:
        """Level the next operation should attempt.

        Usually the current level; once ``reprobe_after_ms`` has passed
        since the last failure, the next-better level instead — a probe.
        Success at a probe level restores it, failure pushes the re-probe
        clock forward without escalating further.
        """
        if self.level > LEVEL_PREFETCHED and self._degraded_at is not None:
            if self._sim.now - self._degraded_at >= self.reprobe_after_ms:
                return self.level - 1
        return self.level

    # -- outcome reporting --------------------------------------------------
    def note_success(self, attempted_level: int) -> None:
        """A copy at ``attempted_level`` succeeded; restore if it was a probe."""
        self._consecutive_failures = 0
        if attempted_level < self.level:
            old = self.level
            self.level = attempted_level
            self.restores += 1
            self._degraded_at = self._sim.now if self.degraded else None
            if self.trace is not None:
                self.trace.record(
                    self._sim.now,
                    f"{self.name}.restore",
                    level=self.level,
                    from_level=old,
                    mode=LEVEL_NAMES[self.level],
                )

    def note_failure(self, attempted_level: int, reason: str = "") -> None:
        """A copy at ``attempted_level`` failed even after retries."""
        self.failures_total += 1
        if attempted_level < self.level:
            # A failed probe: stay degraded, wait another re-probe interval.
            self._degraded_at = self._sim.now
            return
        self._consecutive_failures += 1
        if (
            self._consecutive_failures >= self.failure_threshold
            and self.level < LEVEL_GUEST_ROUNDTRIP
        ):
            old = self.level
            self.level += 1
            self.degrades += 1
            self._consecutive_failures = 0
            self._degraded_at = self._sim.now
            if self.trace is not None:
                self.trace.record(
                    self._sim.now,
                    f"{self.name}.degrade",
                    level=self.level,
                    from_level=old,
                    mode=LEVEL_NAMES[self.level],
                    reason=reason,
                )
        elif self.level > LEVEL_PREFETCHED:
            self._degraded_at = self._sim.now

    # -- checkpointing -------------------------------------------------------
    def snapshot_state(self) -> dict:
        """Deterministic, JSON-able image of the ladder state."""
        return {
            "level": self.level,
            "consecutive_failures": self._consecutive_failures,
            "degraded_at": self._degraded_at,
            "degrades": self.degrades,
            "restores": self.restores,
            "failures_total": self.failures_total,
        }

    def restore_state(self, state: dict) -> None:
        """Reinstate ladder state captured by :meth:`snapshot_state`."""
        self.level = state["level"]
        self._consecutive_failures = state["consecutive_failures"]
        self._degraded_at = state["degraded_at"]
        self.degrades = state["degrades"]
        self.restores = state["restores"]
        self.failures_total = state["failures_total"]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<DegradationController {self.name!r} level={self.level} "
            f"({LEVEL_NAMES[self.level]}) fails={self._consecutive_failures}>"
        )
