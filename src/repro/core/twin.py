"""The twin hypergraphs of §3.2: SVM usage modelled at two layers.

Two directed hypergraphs share a hashtable:

* the **virtual layer** — nodes are virtual devices; a hyperedge is a data
  flow (writer vdev → reader vdevs) and records high-level statistics: the
  slack intervals between consecutive cross-device accesses;
* the **physical layer** — nodes are coherence *locations* (physical
  devices with local memory, plus host memory); its hyperedges record
  low-level properties: transfer sizes and observed prefetch durations;
* the **hashtable in between** maps SVM region IDs to their flow's
  hyperedges in both layers — updated dynamically as the SVM Manager
  processes accesses.

Data flows and regions have a one-to-many relationship (a buffered pipeline
rotates several regions through the same flow), which is exactly why R/W
history is recorded per *flow* rather than per region: a freshly allocated
region inherits its flow's history, giving the paper's "zero-shot"
prediction when data pipelines switch (§3.3).

Generations
-----------
A region's life is a sequence of write generations: a write opens a
generation and the reads that follow belong to it. When the next write
arrives, the previous generation is *finalized*: its actual reader set
names the flow's hyperedge, statistics are folded in, and the region is
(re)bound — so the binding used for prediction always reflects the most
recent completed generation.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Set

from repro.core.hypergraph import (
    DirectedHypergraph,
    Hyperedge,
    deserialize_edge_key,
    serialize_edge_key,
)
from repro.core.smoothing import ExponentialSmoothing
from repro.errors import UnknownRegionError


class _FlowState:
    """Per-region entry of the hashtable linking the two hypergraph layers."""

    __slots__ = (
        "vedge",
        "pedge",
        "gen_writer_vdev",
        "gen_writer_loc",
        "gen_readers",
        "gen_reader_locs",
        "gen_slack_samples",
    )

    def __init__(self) -> None:
        self.vedge: Optional[Hyperedge] = None
        self.pedge: Optional[Hyperedge] = None
        self.gen_writer_vdev: Optional[str] = None
        self.gen_writer_loc: Optional[str] = None
        self.gen_readers: Set[str] = set()
        self.gen_reader_locs: Set[str] = set()
        self.gen_slack_samples: List[float] = []


class PredictedFlow:
    """The prefetch engine's view of a predicted data flow."""

    __slots__ = ("reader_vdevs", "reader_locations", "vedge", "pedge")

    def __init__(
        self,
        reader_vdevs: FrozenSet[str],
        reader_locations: FrozenSet[str],
        vedge: Optional[Hyperedge],
        pedge: Optional[Hyperedge],
    ):
        self.reader_vdevs = reader_vdevs
        self.reader_locations = reader_locations
        self.vedge = vedge
        self.pedge = pedge


class TwinHypergraphs:
    """Virtual + physical data-flow hypergraphs with the region hashtable."""

    #: rough per-object sizes used by :meth:`memory_overhead_bytes`
    _EDGE_COST = 256
    _REGION_COST = 96
    _NODE_COST = 48

    def __init__(self, virtual_nodes: Iterable[str], physical_nodes: Iterable[str]):
        self.virtual = DirectedHypergraph("virtual")
        self.physical = DirectedHypergraph("physical")
        for node in virtual_nodes:
            self.virtual.add_node(node)
        for node in physical_nodes:
            self.physical.add_node(node)
        self._flows: Dict[int, _FlowState] = {}

    # -- region hashtable --------------------------------------------------
    def register_region(self, region_id: int) -> None:
        """Add a hashtable entry for a newly allocated SVM region."""
        self._flows[region_id] = _FlowState()

    def drop_region(self, region_id: int) -> None:
        """Remove the entry when the region is freed."""
        self._flows.pop(region_id, None)

    def _flow(self, region_id: int) -> _FlowState:
        try:
            return self._flows[region_id]
        except KeyError:
            raise UnknownRegionError(f"region #{region_id} not in twin hashtable") from None

    @property
    def tracked_regions(self) -> int:
        return len(self._flows)

    # -- observation hooks (called by the SVM Manager) -------------------------
    def on_write(
        self, region_id: int, writer_vdev: str, writer_loc: str, nbytes: int
    ) -> None:
        """A new write generation begins: finalize the previous one."""
        flow = self._flow(region_id)
        self._finalize_generation(flow)
        flow.gen_writer_vdev = writer_vdev
        flow.gen_writer_loc = writer_loc
        if flow.pedge is not None:
            self._size_stat(flow.pedge).update(float(nbytes))

    def on_read(
        self,
        region_id: int,
        reader_vdev: str,
        reader_loc: str,
        slack: Optional[float],
    ) -> None:
        """A read joined the current generation; record slack if first."""
        flow = self._flow(region_id)
        first_reader = not flow.gen_readers
        flow.gen_readers.add(reader_vdev)
        flow.gen_reader_locs.add(reader_loc)
        if slack is not None and first_reader:
            if flow.vedge is not None and reader_vdev in flow.vedge.destinations:
                self._slack_stat(flow.vedge).update(slack)
            else:
                flow.gen_slack_samples.append(slack)

    def _finalize_generation(self, flow: _FlowState) -> None:
        """Bind the region to the hyperedges named by its actual readers."""
        if flow.gen_writer_vdev is None or not flow.gen_readers:
            self._reset_generation(flow)
            return
        vedge = self.virtual.edge([flow.gen_writer_vdev], flow.gen_readers)
        vedge.touch()
        slack_stat = self._slack_stat(vedge)
        for sample in flow.gen_slack_samples:
            slack_stat.update(sample)
        flow.vedge = vedge

        if flow.gen_writer_loc is not None and flow.gen_reader_locs:
            pedge = self.physical.edge([flow.gen_writer_loc], flow.gen_reader_locs)
            pedge.touch()
            flow.pedge = pedge
        self._reset_generation(flow)

    @staticmethod
    def _reset_generation(flow: _FlowState) -> None:
        flow.gen_writer_vdev = None
        flow.gen_writer_loc = None
        flow.gen_readers = set()
        flow.gen_reader_locs = set()
        flow.gen_slack_samples = []

    # -- statistics accessors ------------------------------------------------
    @staticmethod
    def _slack_stat(edge: Hyperedge) -> ExponentialSmoothing:
        stat = edge.stats.get("slack")
        if stat is None:
            stat = edge.stats["slack"] = ExponentialSmoothing()
        return stat

    @staticmethod
    def _size_stat(edge: Hyperedge) -> ExponentialSmoothing:
        stat = edge.stats.get("size")
        if stat is None:
            stat = edge.stats["size"] = ExponentialSmoothing()
        return stat

    @staticmethod
    def _prefetch_stat(edge: Hyperedge) -> ExponentialSmoothing:
        stat = edge.stats.get("prefetch_time")
        if stat is None:
            stat = edge.stats["prefetch_time"] = ExponentialSmoothing()
        return stat

    def note_prefetch_duration(self, pedge: Hyperedge, duration: float) -> None:
        """Fold an observed prefetch copy duration into the physical layer."""
        self._prefetch_stat(pedge).update(duration)

    def predict_prefetch_time(self, pedge: Optional[Hyperedge]) -> Optional[float]:
        if pedge is None:
            return None
        stat = pedge.stats.get("prefetch_time")
        return stat.predict() if stat is not None else None

    def predict_slack(self, vedge: Optional[Hyperedge]) -> Optional[float]:
        if vedge is None:
            return None
        stat = vedge.stats.get("slack")
        return stat.predict() if stat is not None else None

    def slack_std_error(self, vedge: Hyperedge) -> Optional[float]:
        stat = vedge.stats.get("slack")
        return stat.std_error if stat is not None else None

    # -- prediction -------------------------------------------------------------
    def predict_readers(
        self, region_id: int, writer_vdev: str, allow_zero_shot: bool = True
    ) -> Optional[PredictedFlow]:
        """Predict who reads this region's fresh write next (§3.3 type 1).

        Uses the region's bound flow when available; otherwise falls back to
        the busiest flow sourced at ``writer_vdev`` — the zero-shot path for
        new regions joining an established pipeline. ``allow_zero_shot=False``
        disables the fallback (the fine-grained, per-region-history ablation
        the paper argues against: it re-pays cold starts on every pipeline
        switch).
        """
        flow = self._flow(region_id)
        vedge = flow.vedge
        pedge = flow.pedge
        if vedge is None or writer_vdev not in vedge.sources:
            if not allow_zero_shot:
                return None
            vedge = self._busiest_edge_from(self.virtual, writer_vdev)
            pedge = None
        if vedge is None:
            return None
        if pedge is None:
            pedge = self._matching_pedge(vedge)
        reader_locs = pedge.destinations if pedge is not None else frozenset()
        return PredictedFlow(vedge.destinations, reader_locs, vedge, pedge)

    @staticmethod
    def _busiest_edge_from(graph: DirectedHypergraph, source: str) -> Optional[Hyperedge]:
        candidates = graph.edges_from(source)
        if not candidates:
            return None
        return max(candidates, key=lambda e: e.observations)

    def _matching_pedge(self, vedge: Hyperedge) -> Optional[Hyperedge]:
        """Best-effort physical edge for a zero-shot virtual prediction.

        When a new region inherits a flow, we pick the most-observed
        physical edge overall sourced anywhere — in practice pipelines map
        stably, so the busiest physical edge of the whole graph sourced at
        any location is a weak fallback; prefer edges whose observation
        count matches the virtual edge's activity.
        """
        best: Optional[Hyperedge] = None
        for pedge in self.physical:
            if best is None or pedge.observations > best.observations:
                best = pedge
        return best

    # -- visualization ----------------------------------------------------------
    def to_dot(self) -> str:
        """Render both hypergraph layers as Graphviz DOT (for inspection).

        Hyperedges with multiple destinations are drawn through a small
        junction node, the standard hypergraph-to-digraph expansion.
        """
        lines = ["digraph twin_hypergraphs {", "  rankdir=LR;"]
        for layer, graph in (("virtual", self.virtual), ("physical", self.physical)):
            lines.append(f"  subgraph cluster_{layer} {{")
            lines.append(f'    label="{layer} layer";')
            for node in sorted(graph.nodes):
                lines.append(f'    "{layer}:{node}" [label="{node}"];')
            for index, edge in enumerate(graph):
                slack = edge.stats.get("slack")
                label = f"obs={edge.observations}"
                if slack is not None and slack.predict() is not None:
                    label += f"\\nslack={slack.predict():.1f}ms"
                source = next(iter(edge.sources))
                if len(edge.destinations) == 1:
                    dest = next(iter(edge.destinations))
                    lines.append(
                        f'    "{layer}:{source}" -> "{layer}:{dest}" [label="{label}"];'
                    )
                else:
                    junction = f"{layer}:e{index}"
                    lines.append(f'    "{junction}" [shape=point];')
                    lines.append(f'    "{layer}:{source}" -> "{junction}" [label="{label}"];')
                    for dest in sorted(edge.destinations):
                        lines.append(f'    "{junction}" -> "{layer}:{dest}";')
            lines.append("  }")
        lines.append("}")
        return "\n".join(lines)

    # -- crash recovery ---------------------------------------------------------
    def reset_vdev_history(self, vdev: str) -> int:
        """Forget everything learned about flows involving ``vdev``.

        Virtual-layer edges touching the device are dropped, and regions
        bound to those edges are unbound (their next finalized generation
        re-binds them). Physical-layer edges are kept: locations outlive a
        virtual device's crash. Returns the number of edges removed.
        """
        removed = set(self.virtual.remove_edges_touching(vdev))
        for flow in self._flows.values():
            if flow.vedge is not None and flow.vedge.key in removed:
                flow.vedge = None
                flow.pedge = None
            if flow.gen_writer_vdev == vdev or vdev in flow.gen_readers:
                self._reset_generation(flow)
        return len(removed)

    # -- checkpointing ----------------------------------------------------------
    def region_ids(self) -> Set[int]:
        """Keys of the region hashtable (for the bijection audit)."""
        return set(self._flows)

    def snapshot_state(self) -> Dict[str, object]:
        """Deterministic, JSON-able image of both layers + the hashtable."""

        def graph_state(graph: DirectedHypergraph) -> Dict[str, object]:
            return {
                "nodes": sorted(graph.nodes),
                "edges": [
                    {
                        "key": serialize_edge_key(edge.key),
                        "observations": edge.observations,
                        "stats": {
                            name: stat.state_dict()
                            for name, stat in sorted(edge.stats.items())
                        },
                    }
                    for edge in sorted(
                        graph, key=lambda e: serialize_edge_key(e.key)
                    )
                ],
            }

        return {
            "virtual": graph_state(self.virtual),
            "physical": graph_state(self.physical),
            "flows": {
                str(region_id): {
                    "vedge": None if f.vedge is None else serialize_edge_key(f.vedge.key),
                    "pedge": None if f.pedge is None else serialize_edge_key(f.pedge.key),
                    "gen_writer_vdev": f.gen_writer_vdev,
                    "gen_writer_loc": f.gen_writer_loc,
                    "gen_readers": sorted(f.gen_readers),
                    "gen_reader_locs": sorted(f.gen_reader_locs),
                    "gen_slack_samples": list(f.gen_slack_samples),
                }
                for region_id, f in sorted(self._flows.items())
            },
        }

    def restore_state(self, state: Dict[str, object]) -> None:
        """Reinstate both layers and the hashtable from a snapshot."""

        def load_graph(graph: DirectedHypergraph, data: Dict[str, object]) -> None:
            graph._edges.clear()
            for node in data["nodes"]:
                graph.add_node(node)
            for entry in data["edges"]:
                key = deserialize_edge_key(entry["key"])
                edge = graph.edge(key[0], key[1])
                edge.observations = entry["observations"]
                for name, stat_state in entry["stats"].items():
                    stat = ExponentialSmoothing()
                    stat.load_state(stat_state)
                    edge.stats[name] = stat

        load_graph(self.virtual, state["virtual"])
        load_graph(self.physical, state["physical"])
        self._flows = {}
        for key, entry in state["flows"].items():
            flow = _FlowState()
            if entry["vedge"] is not None:
                flow.vedge = self.virtual.get_edge(deserialize_edge_key(entry["vedge"]))
            if entry["pedge"] is not None:
                flow.pedge = self.physical.get_edge(deserialize_edge_key(entry["pedge"]))
            flow.gen_writer_vdev = entry["gen_writer_vdev"]
            flow.gen_writer_loc = entry["gen_writer_loc"]
            flow.gen_readers = set(entry["gen_readers"])
            flow.gen_reader_locs = set(entry["gen_reader_locs"])
            flow.gen_slack_samples = list(entry["gen_slack_samples"])
            self._flows[int(key)] = flow

    # -- bookkeeping for §5.2's memory-overhead claim -------------------------
    def memory_overhead_bytes(self) -> int:
        """Estimated resident size of the framework's data structures."""
        return (
            (len(self.virtual) + len(self.physical)) * self._EDGE_COST
            + len(self._flows) * self._REGION_COST
            + (len(self.virtual.nodes) + len(self.physical.nodes)) * self._NODE_COST
        )
