"""Coherence protocols and the copy-path planner.

Coherence maintenance is data copying that makes a reader's location hold
the newest bytes (§2.2). Three protocols are implemented:

* :class:`UnifiedPrefetchProtocol` — vSoC's protocol (§3.3): copies run on
  the shortest host-side path, launched *ahead of time* by the prefetch
  engine at write retirement, so reads find data already resident.
* :class:`UnifiedWriteInvalidate` — the §5.4 ablation: same direct copy
  paths, but lazily at ``begin_access`` and necessarily synchronous with
  host execution (the classic write-invalidate protocol [36]).
* :class:`GuestMemoryWriteInvalidate` — the baseline architecture of §2.2
  (GAE, QEMU-KVM): every maintenance round-trips through guest memory,
  costing two crossings of the virtualization boundary.

The :class:`CopyPlanner` knows the machine topology and picks the legs of a
copy: nothing for co-located data (the in-GPU zero-copy special case of
§3.2), one bus for host↔device, two for device↔device.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, List, Optional, TYPE_CHECKING

from repro.core.degradation import (
    LEVEL_GUEST_ROUNDTRIP,
    LEVEL_NAMES,
    DegradationController,
)
from repro.core.region import GUEST_LOCATION, HOST_LOCATION, SvmRegion
from repro.errors import (
    ConfigurationError,
    DeadlineExceededError,
    DegradedModeError,
    TransientCopyError,
)
from repro.hw.bus import Bus
from repro.hw.machine import HostMachine
from repro.obs import DISABLED, Observability
from repro.sim import RetryPolicy, Simulator, retrying, with_deadline
from repro.sim.tracing import TraceLog

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.prefetch import PrefetchEngine

#: Default retry schedule for coherence copies: three tries with a short,
#: steep backoff — a coherence copy sits on the access-latency critical
#: path, so waiting long before retrying is worse than failing over.
COPY_RETRY_POLICY = RetryPolicy(
    max_attempts=3, base_delay_ms=0.05, multiplier=4.0, max_delay_ms=2.0
)

#: Exceptions a coherence copy may survive via retry or degradation.
RECOVERABLE_COPY_ERRORS = (TransientCopyError, DeadlineExceededError)


class CopyPlanner:
    """Plans and executes coherence copies over the host topology.

    The ``*_resilient`` variants wrap the plain copy processes in the
    retry/watchdog machinery from :mod:`repro.sim.resilience`:

    * each attempt is retried per ``retry_policy`` on transient faults;
    * when ``watchdog_margin`` is set, each attempt must finish within
      ``margin × queueing-free-estimate`` or it counts as failed (the
      orphaned transfer still drains its bus).

    ``watchdog_margin`` defaults to ``None`` (disabled) so fault-free
    benchmarks keep their exact timing; the chaos harness enables it.
    """

    def __init__(
        self,
        sim: Simulator,
        machine: HostMachine,
        boundary: Optional[Bus] = None,
        retry_policy: RetryPolicy = COPY_RETRY_POLICY,
        watchdog_margin: Optional[float] = None,
        trace: Optional[TraceLog] = None,
    ):
        if watchdog_margin is not None and watchdog_margin <= 1.0:
            raise ConfigurationError(
                f"watchdog_margin must be > 1 (a multiple of the estimate), "
                f"got {watchdog_margin}"
            )
        self._sim = sim
        self._machine = machine
        self.boundary = boundary if boundary is not None else machine.boundary
        self.retry_policy = retry_policy
        self.watchdog_margin = watchdog_margin
        self.trace = trace
        self.copy_retries = 0
        self.copy_failures = 0
        self.watchdog_expiries = 0
        self._links: Dict[str, Bus] = {}
        for device in machine.devices.values():
            if device.local_memory is not None:
                if device.link is None:
                    raise ConfigurationError(
                        f"device {device.name!r} has local memory but no bus link"
                    )
                self._links[device.name] = device.link

    # -- unified (vSoC) paths -------------------------------------------------
    def unified_legs(self, src: str, dst: str) -> List[Bus]:
        """Buses a direct host-side copy must traverse (may be empty)."""
        if src == dst:
            return []
        legs: List[Bus] = []
        if src != HOST_LOCATION:
            legs.append(self._link(src))
        if dst != HOST_LOCATION:
            legs.append(self._link(dst))
        return legs

    def estimate_unified(self, src: str, dst: str, nbytes: int) -> float:
        """Queueing-free time estimate for a direct copy (cold-start path)."""
        return sum(bus.transfer_time(nbytes) for bus in self.unified_legs(src, dst))

    def copy_unified(self, src: str, dst: str, nbytes: int) -> Generator[Any, Any, float]:
        """Process: perform a direct copy; returns elapsed ms."""
        start = self._sim.now
        for bus in self.unified_legs(src, dst):
            yield from bus.transfer(nbytes)
        return self._sim.now - start

    # -- guest-memory (baseline) paths -------------------------------------------
    def copy_via_boundary(self, nbytes: int) -> Generator[Any, Any, float]:
        """Process: one crossing of the virtualization boundary.

        The boundary bus's bandwidth is an *effective* figure calibrated to
        include the device-side leg (see :mod:`repro.hw.machine`), so a
        full baseline maintenance is exactly two of these.
        """
        start = self._sim.now
        yield from self.boundary.transfer(nbytes)
        return self._sim.now - start

    def estimate_boundary(self, nbytes: int) -> float:
        return self.boundary.transfer_time(nbytes)

    def copy_boundary_roundtrip(self, nbytes: int) -> Generator[Any, Any, float]:
        """Process: the full legacy 4-copy path — two boundary crossings.

        This is the deepest degradation rung: flush to guest memory, then
        fetch back out. Twice the boundary cost, but no dependence on the
        direct device links that keep faulting.
        """
        start = self._sim.now
        yield from self.boundary.transfer(nbytes)
        yield from self.boundary.transfer(nbytes)
        return self._sim.now - start

    def estimate_roundtrip(self, nbytes: int) -> float:
        return 2 * self.boundary.transfer_time(nbytes)

    # -- resilient variants --------------------------------------------------
    def copy_unified_resilient(
        self, src: str, dst: str, nbytes: int
    ) -> Generator[Any, Any, float]:
        """Process: :meth:`copy_unified` with retries and optional watchdog."""
        return (
            yield from self._resilient(
                lambda: self.copy_unified(src, dst, nbytes),
                self.estimate_unified(src, dst, nbytes),
                f"copy:{src}->{dst}",
            )
        )

    def copy_via_boundary_resilient(self, nbytes: int) -> Generator[Any, Any, float]:
        """Process: :meth:`copy_via_boundary` with retries and optional watchdog."""
        return (
            yield from self._resilient(
                lambda: self.copy_via_boundary(nbytes),
                self.estimate_boundary(nbytes),
                "copy:boundary",
            )
        )

    def copy_roundtrip_resilient(self, nbytes: int) -> Generator[Any, Any, float]:
        """Process: :meth:`copy_boundary_roundtrip` with retries/watchdog."""
        return (
            yield from self._resilient(
                lambda: self.copy_boundary_roundtrip(nbytes),
                self.estimate_roundtrip(nbytes),
                "copy:roundtrip",
            )
        )

    def _resilient(
        self,
        factory: Callable[[], Generator[Any, Any, float]],
        estimate: float,
        label: str,
    ) -> Generator[Any, Any, float]:
        """Retry ``factory`` per policy; watchdog each attempt when enabled."""
        if self.watchdog_margin is not None and estimate > 0:
            deadline = self.watchdog_margin * estimate + 1.0
            attempt = factory

            def factory() -> Generator[Any, Any, float]:
                try:
                    return (
                        yield from with_deadline(
                            self._sim, attempt(), deadline, name=label
                        )
                    )
                except DeadlineExceededError:
                    self.watchdog_expiries += 1
                    raise

        def on_retry(failures: int, exc: BaseException) -> None:
            self.copy_retries += 1

        try:
            return (
                yield from retrying(
                    self._sim,
                    factory,
                    self.retry_policy,
                    retry_on=RECOVERABLE_COPY_ERRORS,
                    name=label,
                    trace=self.trace,
                    on_retry=on_retry,
                )
            )
        except RECOVERABLE_COPY_ERRORS:
            self.copy_failures += 1
            raise

    # -- helpers -------------------------------------------------------------
    def _link(self, location: str) -> Bus:
        try:
            return self._links[location]
        except KeyError:
            raise ConfigurationError(f"no bus link for location {location!r}") from None

    def known_locations(self) -> List[str]:
        return [HOST_LOCATION, *sorted(self._links)]


class CoherenceProtocol:
    """Hook interface the SVM manager and host executors drive.

    Hooks are generators so implementations can block (bus transfers,
    waiting for fences). The manager guarantees the calling context:

    * :meth:`begin_access_read` — guest driver context, inside
      ``begin_access``; its elapsed time **is** the access latency the
      paper measures.
    * :meth:`executor_after_write` — host executor, right after a write
      op retires (before its signal fence fires).
    * :meth:`executor_before_read` — host executor, after the wait fence
      and before the read op; the correctness net for data that guest-side
      logic did not wait for.
    * :meth:`write_compensation` — guest driver, after dispatching a
      write; returns ms the driver must keep blocking (the adaptive
      synchronism of §3.3).
    """

    name = "abstract"

    def begin_access_read(
        self, region: SvmRegion, reader_vdev: str, reader_loc: str
    ) -> Generator[Any, Any, float]:
        raise NotImplementedError  # pragma: no cover - interface
        yield  # pragma: no cover

    def executor_after_write(
        self, region: SvmRegion, writer_vdev: str, writer_loc: str
    ) -> Generator[Any, Any, None]:
        raise NotImplementedError  # pragma: no cover - interface
        yield  # pragma: no cover

    def executor_before_read(
        self, region: SvmRegion, reader_vdev: str, reader_loc: str
    ) -> Generator[Any, Any, None]:
        raise NotImplementedError  # pragma: no cover - interface
        yield  # pragma: no cover

    def write_compensation(self, region: SvmRegion) -> float:
        """Extra blocking (ms) the guest driver owes after a write. 0 here."""
        return 0.0


class UnifiedPrefetchProtocol(CoherenceProtocol):
    """vSoC's protocol: direct paths + ahead-of-time copies (§3.3).

    With a :class:`~repro.core.degradation.DegradationController` attached,
    synchronous maintenance consults the degradation ladder: level 0/1 use
    the direct unified path (retried), level 2 falls back to the 4-copy
    guest-memory round-trip. Repeated failures escalate; successes at a
    probe level restore. Without a controller the behavior is byte-for-byte
    the pre-fault-model protocol.
    """

    name = "unified-prefetch"

    #: Hard cap on ladder rounds inside one maintenance call — with a
    #: 3-level ladder and 3 failures per escalation, 12 covers the worst
    #: legal walk with margin; past it something is wedged for good.
    MAX_MAINTENANCE_ROUNDS = 12

    def __init__(
        self,
        sim: Simulator,
        planner: CopyPlanner,
        engine: "PrefetchEngine",
        trace: TraceLog,
        degradation: Optional[DegradationController] = None,
        obs: Optional[Observability] = None,
    ):
        self._sim = sim
        self._planner = planner
        self._engine = engine
        self._trace = trace
        self._obs = obs if obs is not None else DISABLED
        self.degradation = degradation
        self.sync_misses = 0
        self.prefetch_joins = 0
        self.degraded_copies = 0

    def _maintain(self, region, reader_loc, path_tag):
        """Process: synchronous maintenance, walking the degradation ladder.

        Tries the level :meth:`DegradationController.plan_level` plans
        (direct unified copy below level 2, guest-memory round-trip at
        level 2), reporting each outcome so the controller can escalate or
        restore. Only gives up — :class:`DegradedModeError` — when even the
        round-trip path keeps failing.
        """
        src = region.last_writer_location or HOST_LOCATION
        span = self._obs.tracer.begin(
            "coherence.copy", "coherence", cat="coherence", flow=region.flow,
            region=region.region_id, bytes=region.dirty_bytes,
        )
        for _ in range(self.MAX_MAINTENANCE_ROUNDS):
            ctl = self.degradation
            level = ctl.plan_level() if ctl is not None else 0
            try:
                if level >= LEVEL_GUEST_ROUNDTRIP:
                    self.degraded_copies += 1
                    duration = yield from self._planner.copy_roundtrip_resilient(
                        region.dirty_bytes
                    )
                    region.note_copy(GUEST_LOCATION)
                    tag = f"{path_tag}-degraded"
                else:
                    duration = yield from self._planner.copy_unified_resilient(
                        src, reader_loc, region.dirty_bytes
                    )
                    tag = path_tag
            except RECOVERABLE_COPY_ERRORS as err:
                if ctl is None:
                    raise
                ctl.note_failure(level, reason=type(err).__name__)
                if level >= LEVEL_GUEST_ROUNDTRIP:
                    self._obs.tracer.end(span, path="failed")
                    raise DegradedModeError(
                        f"region {region.region_id}: maintenance failed even on "
                        f"the {LEVEL_NAMES[LEVEL_GUEST_ROUNDTRIP]} path"
                    ) from err
                continue
            if ctl is not None:
                ctl.note_success(level)
            region.note_copy(reader_loc)
            self._obs.tracer.end(span, path=tag, duration=duration)
            self._obs.registry.histogram("coherence.duration_ms", path=tag).observe(duration)
            self._trace.record(
                self._sim.now,
                "coherence.maintenance",
                duration=duration,
                bytes=region.dirty_bytes,
                path=tag,
                region=region.region_id,
            )
            return duration
        self._obs.tracer.end(span, path="failed")
        raise DegradedModeError(
            f"region {region.region_id}: maintenance did not converge within "
            f"{self.MAX_MAINTENANCE_ROUNDS} ladder rounds"
        )

    def begin_access_read(self, region, reader_vdev, reader_loc):
        """Block until coherent at the reader — near zero after a good prefetch."""
        start = self._sim.now
        if (
            region.write_in_flight
            and region.write_fence is not None
            and region.pending_writer_location != reader_loc
        ):
            # The newest data is still being produced *somewhere else*;
            # a coherence copy needs it finalized first. (Co-located
            # readers don't wait here — command fences order them on the
            # device itself, the weak-state case of §3.4.)
            yield region.write_fence.wait()
        if not region.is_valid_at(reader_loc):
            prefetch = region.pending_prefetch
            if prefetch is not None and reader_loc in region.prefetch_targets:
                self.prefetch_joins += 1
                yield prefetch  # join the in-flight ahead-of-time copy
            if not region.is_valid_at(reader_loc):
                # Misprediction, suspension, or a prefetch that died on a
                # transient fault: synchronous maintenance.
                self.sync_misses += 1
                yield from self._maintain(region, reader_loc, "sync-miss")
        return self._sim.now - start

    def executor_after_write(self, region, writer_vdev, writer_loc):
        """Launch the ahead-of-time copy; never blocks the executor."""
        self._engine.launch(region, writer_vdev, writer_loc)
        return
        yield  # pragma: no cover - generator form required by the interface

    def executor_before_read(self, region, reader_vdev, reader_loc):
        """Safety net: ensure residency before the device touches the data."""
        if not region.is_valid_at(reader_loc):
            prefetch = region.pending_prefetch
            if prefetch is not None and reader_loc in region.prefetch_targets:
                yield prefetch
            if not region.is_valid_at(reader_loc):
                yield from self._maintain(region, reader_loc, "executor-miss")

    def write_compensation(self, region: SvmRegion) -> float:
        """The engine computed this at launch time (§3.3's time delta)."""
        return region.pending_compensation


class UnifiedWriteInvalidate(CoherenceProtocol):
    """The §5.4 ablation: direct paths, but lazy and synchronous.

    Memory is updated at the beginning of each SVM access; coherence needs
    synchronous guest-host execution, so ``begin_access`` first waits out
    the producing write — the source of the chain reaction in Figure 16.
    """

    name = "unified-write-invalidate"

    def __init__(
        self,
        sim: Simulator,
        planner: CopyPlanner,
        trace: TraceLog,
        obs: Optional[Observability] = None,
    ):
        self._sim = sim
        self._planner = planner
        self._trace = trace
        self._obs = obs if obs is not None else DISABLED

    def begin_access_read(self, region, reader_vdev, reader_loc):
        start = self._sim.now
        if (
            region.write_in_flight
            and region.write_fence is not None
            and region.pending_writer_location != reader_loc
        ):
            yield region.write_fence.wait()
        if not region.is_valid_at(reader_loc):
            span = self._obs.tracer.begin(
                "coherence.copy", "coherence", cat="coherence", flow=region.flow,
                region=region.region_id, bytes=region.dirty_bytes,
            )
            duration = yield from self._planner.copy_unified_resilient(
                region.last_writer_location or HOST_LOCATION,
                reader_loc,
                region.dirty_bytes,
            )
            region.note_copy(reader_loc)
            self._obs.tracer.end(span, path="write-invalidate", duration=duration)
            self._obs.registry.histogram(
                "coherence.duration_ms", path="write-invalidate"
            ).observe(duration)
            self._trace.record(
                self._sim.now,
                "coherence.maintenance",
                duration=duration,
                bytes=region.dirty_bytes,
                path="write-invalidate",
                region=region.region_id,
            )
        return self._sim.now - start

    def executor_after_write(self, region, writer_vdev, writer_loc):
        return
        yield  # pragma: no cover - generator form required by the interface

    def executor_before_read(self, region, reader_vdev, reader_loc):
        if not region.is_valid_at(reader_loc):
            span = self._obs.tracer.begin(
                "coherence.copy", "coherence", cat="coherence", flow=region.flow,
                region=region.region_id, bytes=region.dirty_bytes,
            )
            duration = yield from self._planner.copy_unified_resilient(
                region.last_writer_location or HOST_LOCATION,
                reader_loc,
                region.dirty_bytes,
            )
            region.note_copy(reader_loc)
            self._obs.tracer.end(span, path="write-invalidate-net", duration=duration)
            self._obs.registry.histogram(
                "coherence.duration_ms", path="write-invalidate-net"
            ).observe(duration)
            self._trace.record(
                self._sim.now,
                "coherence.maintenance",
                duration=duration,
                bytes=region.dirty_bytes,
                path="write-invalidate-net",
                region=region.region_id,
            )


class UnifiedBroadcast(CoherenceProtocol):
    """A classical broadcast protocol over the unified framework (§7).

    At every write retirement, the new data is pushed to *every* location —
    no prediction needed, reads never block. The related-work section
    dismisses broadcast for mobile emulation because of its bandwidth
    overhead; this implementation exists to quantify that: framebuffers
    get pushed GPU→host although nothing ever reads them there, CPU
    scratch regions get pushed host→GPU, and so on. Compare bus
    ``bytes_moved`` against the prefetch protocol's.
    """

    name = "unified-broadcast"

    def __init__(
        self,
        sim: Simulator,
        planner: CopyPlanner,
        trace: TraceLog,
        obs: Optional[Observability] = None,
    ):
        self._sim = sim
        self._planner = planner
        self._trace = trace
        self._obs = obs if obs is not None else DISABLED
        self.broadcast_copies = 0
        self.broadcast_failures = 0

    def _targets(self, writer_loc: str):
        return [
            loc for loc in self._planner.known_locations()
            if loc not in (writer_loc, GUEST_LOCATION)
        ]

    def begin_access_read(self, region, reader_vdev, reader_loc):
        start = self._sim.now
        if (
            region.write_in_flight
            and region.write_fence is not None
            and region.pending_writer_location != reader_loc
        ):
            yield region.write_fence.wait()
        if not region.is_valid_at(reader_loc):
            prefetch = region.pending_prefetch
            if prefetch is not None and reader_loc in region.prefetch_targets:
                yield prefetch  # join the in-flight broadcast
            if not region.is_valid_at(reader_loc):  # miss, or the push failed
                duration = yield from self._planner.copy_unified_resilient(
                    region.last_writer_location or HOST_LOCATION,
                    reader_loc,
                    region.dirty_bytes,
                )
                region.note_copy(reader_loc)
                self._trace.record(
                    self._sim.now, "coherence.maintenance",
                    duration=duration, bytes=region.dirty_bytes,
                    path="broadcast-miss", region=region.region_id,
                )
        return self._sim.now - start

    def executor_after_write(self, region, writer_vdev, writer_loc):
        """Push the dirty data everywhere, asynchronously."""
        targets = self._targets(writer_loc)
        if not targets:
            return
        copies = []
        for target in targets:
            copies.append(self._sim.spawn(
                self._push(region, writer_loc, target),
                name=f"broadcast:r{region.region_id}->{target}",
            ))
        region.prefetch_targets = set(targets)
        if len(copies) == 1:
            region.pending_prefetch = copies[0]
        else:
            region.pending_prefetch = self._sim.spawn(
                self._join(copies), name=f"broadcast:r{region.region_id}:join"
            )
        return
        yield  # pragma: no cover - generator form required by the interface

    def _push(self, region, src, dst):
        span = self._obs.tracer.begin(
            "coherence.copy", "coherence", cat="coherence", flow=region.flow,
            region=region.region_id, bytes=region.dirty_bytes, dst=dst,
        )
        try:
            duration = yield from self._planner.copy_unified_resilient(
                src, dst, region.dirty_bytes
            )
        except RECOVERABLE_COPY_ERRORS as err:
            # A failed push only costs bandwidth savings: the reader-side
            # safety net re-copies on demand. Never poison the joiners.
            self.broadcast_failures += 1
            self._obs.tracer.end(span, path="broadcast", failed=type(err).__name__)
            self._trace.record(
                self._sim.now, "broadcast.failed",
                bytes=region.dirty_bytes, region=region.region_id,
                error=type(err).__name__,
            )
            return 0.0
        region.note_copy(dst)
        self.broadcast_copies += 1
        self._obs.tracer.end(span, path="broadcast", duration=duration)
        self._obs.registry.histogram(
            "coherence.duration_ms", path="broadcast"
        ).observe(duration)
        self._trace.record(
            self._sim.now, "coherence.maintenance",
            duration=duration, bytes=region.dirty_bytes,
            path="broadcast", region=region.region_id,
        )
        return duration

    @staticmethod
    def _join(copies):
        for copy in copies:
            yield copy

    def executor_before_read(self, region, reader_vdev, reader_loc):
        if not region.is_valid_at(reader_loc):
            prefetch = region.pending_prefetch
            if prefetch is not None and reader_loc in region.prefetch_targets:
                yield prefetch
            if not region.is_valid_at(reader_loc):  # miss, or the push failed
                duration = yield from self._planner.copy_unified_resilient(
                    region.last_writer_location or HOST_LOCATION,
                    reader_loc,
                    region.dirty_bytes,
                )
                region.note_copy(reader_loc)
                self._trace.record(
                    self._sim.now, "coherence.maintenance",
                    duration=duration, bytes=region.dirty_bytes,
                    path="broadcast-net", region=region.region_id,
                )


class GuestMemoryWriteInvalidate(CoherenceProtocol):
    """The modular baseline of §2.2: coherence through guest memory.

    Virtual devices are isolated from each other: each one only keeps its
    *own* copy in sync with guest memory. Validity is therefore tracked
    per **virtual device**, not per physical location — two virtual
    devices backed by the same physical GPU still round-trip data through
    guest memory, which is precisely the waste the unified SVM framework
    eliminates (§3.2's in-GPU zero-copy special case).

    After a device writes, its virtual device flushes the data to guest
    memory (one boundary crossing, in the writer's executor); before
    another device reads, its virtual device fetches from guest memory
    (the second crossing). ``begin_access`` itself stays cheap — which is
    why QEMU-KVM shows the lowest access latency in Table 2 while paying
    the highest coherence and throughput costs.
    """

    name = "guest-memory-write-invalidate"

    def __init__(
        self,
        sim: Simulator,
        planner: CopyPlanner,
        trace: TraceLog,
        obs: Optional[Observability] = None,
    ):
        self._sim = sim
        self._planner = planner
        self._trace = trace
        self._obs = obs if obs is not None else DISABLED
        # region_id -> virtual devices holding an up-to-date private copy
        self._valid_vdevs: Dict[int, set] = {}

    def begin_access_read(self, region, reader_vdev, reader_loc):
        # Guest memory is kept up to date eagerly; the CPU-visible mapping
        # is always coherent. Nothing to wait for here.
        return 0.0
        yield  # pragma: no cover - generator form required by the interface

    def executor_after_write(self, region, writer_vdev, writer_loc):
        """Flush: writer's copy → guest memory (first boundary crossing)."""
        self._valid_vdevs[region.region_id] = {writer_vdev}
        if writer_vdev == "cpu":
            # Guest CPU writes land in guest memory directly (mmap'd); the
            # SVM *is* guest memory in this architecture, so no flush.
            region.note_copy(GUEST_LOCATION)
            region.last_flush_duration = 0.0
            return
        span = self._obs.tracer.begin(
            "coherence.flush", "coherence", cat="coherence", flow=region.flow,
            region=region.region_id, bytes=region.dirty_bytes,
        )
        duration = yield from self._planner.copy_via_boundary_resilient(region.dirty_bytes)
        region.note_copy(GUEST_LOCATION)
        region.last_flush_duration = duration
        self._obs.tracer.end(span, duration=duration)
        self._trace.record(
            self._sim.now,
            "coherence.flush",
            duration=duration,
            bytes=region.dirty_bytes,
            region=region.region_id,
        )

    def executor_before_read(self, region, reader_vdev, reader_loc):
        """Fetch: guest memory → reader's copy (second boundary crossing)."""
        valid = self._valid_vdevs.setdefault(region.region_id, set())
        if reader_vdev in valid or reader_vdev == "cpu":
            return  # guest CPU reads its own memory mapping for free
        span = self._obs.tracer.begin(
            "coherence.copy", "coherence", cat="coherence", flow=region.flow,
            region=region.region_id, bytes=region.dirty_bytes,
        )
        duration = yield from self._planner.copy_via_boundary_resilient(region.dirty_bytes)
        valid.add(reader_vdev)
        region.note_copy(reader_loc)
        flush_cost = region.last_flush_duration
        self._obs.tracer.end(span, path="guest-memory", duration=duration)
        self._obs.registry.histogram(
            "coherence.duration_ms", path="guest-memory"
        ).observe(duration)
        self._trace.record(
            self._sim.now,
            "coherence.maintenance",
            duration=duration + flush_cost,
            bytes=region.dirty_bytes,
            path="guest-memory",
            region=region.region_id,
        )
