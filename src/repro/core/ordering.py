"""Access ordering between virtual devices: command types and modes (§3.4).

Guest drivers enqueue :class:`Command` objects into per-device host command
queues. With :attr:`OrderingMode.FENCES`, order semantics travel as
signal/wait fence commands and the driver returns immediately. With
:attr:`OrderingMode.ATOMIC` (the common approach vSoC replaces, and the
§5.4 ablation), the driver blocks on each command's completion — the
head-of-queue blocking the paper describes.
"""

from __future__ import annotations

import enum
from typing import Sequence

from repro.core.fence import VirtualFence
from repro.core.region import SvmRegion
from repro.sim import SimEvent, Simulator


class OrderingMode(enum.Enum):
    """How shared-resource operations are ordered across host threads."""

    FENCES = "fences"
    ATOMIC = "atomic"


class Command:
    """Base class for host command-queue entries."""

    __slots__ = ()


class ExecCommand(Command):
    """Execute one device operation, optionally touching SVM regions.

    ``reads`` / ``writes`` carry the regions whose coherence the executor
    must respect: before the op it runs the protocol's before-read net on
    every read region; after the op it retires the write on every write
    region (invalidation + after-write hook). ``scale`` multiplies the
    physical op time — per-emulator efficiency factors live there.
    """

    __slots__ = (
        "op", "nbytes", "reads", "writes", "scale", "dirty_bytes", "done",
        "dispatched_at", "flow",
    )

    def __init__(
        self,
        sim: Simulator,
        op: str,
        nbytes: int,
        reads: Sequence[SvmRegion] = (),
        writes: Sequence[SvmRegion] = (),
        scale: float = 1.0,
        dirty_bytes: int = 0,
        dispatched_at: float = 0.0,
        flow: int = 0,
    ):
        self.op = op
        self.nbytes = nbytes
        self.reads = tuple(reads)
        self.writes = tuple(writes)
        self.scale = scale
        self.dirty_bytes = dirty_bytes  # 0: the whole region is dirty
        self.done = SimEvent(sim, name=f"cmd:{op}")
        self.dispatched_at = dispatched_at
        self.flow = flow  # causal-trace flow id (0 = none)

    def dirty_window(self, region: SvmRegion) -> int:
        """Bytes of ``region`` this op actually dirtied (clamped to size)."""
        dirty = self.dirty_bytes if self.dirty_bytes > 0 else self.nbytes
        if dirty <= 0 or dirty > region.size:
            return region.size
        return dirty

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        regions = ",".join(
            f"#{r.region_id}" for r in (*self.reads, *self.writes)
        )
        return f"<ExecCommand {self.op} [{regions}] {self.nbytes}B>"


class SignalFenceCommand(Command):
    """Fire the fence once every preceding command in the queue retired."""

    __slots__ = ("fence", "flow")

    def __init__(self, fence: VirtualFence, flow: int = 0):
        self.fence = fence
        self.flow = flow


class WaitFenceCommand(Command):
    """Stall the executor until the paired signal fence has fired."""

    __slots__ = ("fence", "flow")

    def __init__(self, fence: VirtualFence, flow: int = 0):
        self.fence = fence
        self.flow = flow
