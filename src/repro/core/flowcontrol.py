"""MIMD flow control: pacing guest dispatch (§3.4, inherited from Trinity).

Because virtual command fences decouple guest drivers from host execution,
a guest can dispatch commands faster than the host retires them, piling
work up in host command queues. Trinity's remedy — adopted by vSoC — is a
Multiplicative-Increase / Multiplicative-Decrease window on in-flight
commands per device:

* every retired command grows the window by ``increase`` (cautiously);
* a dispatch that would exceed the window shrinks it by ``decrease`` and
  blocks until in-flight work drains below the new window.

The window therefore oscillates around the host's service rate, exactly
like a congestion window around path capacity.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque

from repro.errors import ConfigurationError
from repro.sim import SimEvent, Simulator
from repro.sim.primitives import Waitable


class MimdFlowControl:
    """MIMD window limiting commands in flight between guest and host."""

    def __init__(
        self,
        sim: Simulator,
        initial_window: float = 8.0,
        min_window: float = 1.0,
        max_window: float = 256.0,
        increase: float = 1.05,
        decrease: float = 0.7,
    ):
        if not min_window <= initial_window <= max_window:
            raise ConfigurationError("initial window outside [min, max]")
        if not (increase > 1.0 and 0.0 < decrease < 1.0):
            raise ConfigurationError("need increase > 1 and 0 < decrease < 1")
        self._sim = sim
        self.window = initial_window
        self.min_window = min_window
        self.max_window = max_window
        self.increase = increase
        self.decrease = decrease
        self.in_flight = 0
        self._waiters: Deque[SimEvent] = deque()
        self.throttle_events = 0

    def try_dispatch(self) -> bool:
        """Claim a slot if the window allows; shrink the window if not."""
        if self.in_flight < int(self.window):
            self.in_flight += 1
            return True
        self.window = max(self.min_window, self.window * self.decrease)
        self.throttle_events += 1
        return False

    def dispatch(self) -> Waitable:
        """Waitable that fires once a dispatch slot has been claimed."""
        event = SimEvent(self._sim, name="mimd.dispatch")
        if self.try_dispatch():
            event.fire(None)
        else:
            self._waiters.append(event)
        return event

    def complete(self) -> None:
        """A command retired on the host: grow the window, admit a waiter."""
        if self.in_flight <= 0:
            raise ConfigurationError("complete() without a matching dispatch")
        self.in_flight -= 1
        self.window = min(self.max_window, self.window * self.increase)
        while self._waiters and self.in_flight < int(self.window):
            self.in_flight += 1
            self._waiters.popleft().fire(None)

    @property
    def backlog(self) -> int:
        """Dispatches currently blocked on the window."""
        return len(self._waiters)

    def snapshot_state(self) -> dict:
        """Deterministic, JSON-able image of the window state."""
        return {
            "window": self.window,
            "in_flight": self.in_flight,
            "throttle_events": self.throttle_events,
            "backlog": self.backlog,
        }

    def restore_state(self, state: dict) -> None:
        """Reinstate the numeric window state from :meth:`snapshot_state`.

        Parked waiters are continuations and are not restored here — the
        deterministic-replay layer reconstructs them by re-running the
        workload; direct restore targets a quiescent emulator.

        Live-migration restores load this path from bytes that crossed a
        worker boundary, so a corrupt snapshot must be rejected loudly:
        missing keys, non-finite or negative values, and non-integer
        counters all raise :class:`ValueError` naming the offending field
        instead of surfacing as a ``KeyError`` (or silently installing a
        window the MIMD invariants do not hold for).
        """
        if not isinstance(state, dict):
            raise ValueError(
                f"flow-control state must be a dict, got {type(state).__name__}"
            )
        missing = [k for k in ("window", "in_flight", "throttle_events")
                   if k not in state]
        if missing:
            raise ValueError(f"flow-control state is missing keys: {missing}")
        window = state["window"]
        if isinstance(window, bool) or not isinstance(window, (int, float)):
            raise ValueError(f"flow-control window must be numeric, got {window!r}")
        window = float(window)
        if not math.isfinite(window) or window <= 0:
            raise ValueError(
                f"flow-control window must be finite and > 0, got {window}"
            )
        counters = {}
        for key in ("in_flight", "throttle_events"):
            value = state[key]
            if isinstance(value, bool) or not isinstance(value, int):
                raise ValueError(
                    f"flow-control {key} must be an integer, got {value!r}"
                )
            if value < 0:
                raise ValueError(f"flow-control {key} must be >= 0, got {value}")
            counters[key] = value
        self.window = window
        self.in_flight = counters["in_flight"]
        self.throttle_events = counters["throttle_events"]
