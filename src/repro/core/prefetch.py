"""The prefetch engine (§3.3): robust ahead-of-time coherence.

At every host write retirement the engine:

1. predicts the next reader(s) from the region's data flow in the twin
   hypergraphs (falling back to the busiest flow from the writing virtual
   device — the zero-shot path for freshly allocated regions);
2. unless suspended, launches the coherence copy immediately as a
   background DMA process;
3. computes the *compensation* the guest driver must block for —
   ``max(0, predicted_prefetch_time − predicted_slack)`` — so that by the
   time the next access arrives, the copy has finished (Figure 8).

Robustness policies from the paper's corner cases:

* three consecutive prediction failures on a flow suspend prefetching for
  that flow (for :data:`SUSPEND_COOLDOWN` subsequent writes);
* prefetch is skipped while the copy path's available bandwidth sits below
  50% of the maximum this engine has observed on that path.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Optional, Set

from repro.core.coherence import RECOVERABLE_COPY_ERRORS, CopyPlanner
from repro.core.degradation import LEVEL_PREFETCHED, DegradationController
from repro.core.region import SvmRegion
from repro.core.twin import TwinHypergraphs
from repro.obs import DISABLED, Observability
from repro.sim import Simulator
from repro.sim.tracing import TraceLog
from repro.units import VSYNC_PERIOD_MS

#: Consecutive failures after which a flow's prefetching is suspended (§3.3).
FAILURE_SUSPEND_THRESHOLD = 3
#: Available/maximum bandwidth ratio below which prefetch is skipped (§3.3).
BANDWIDTH_SUSPEND_RATIO = 0.5
#: Writes to sit out before a suspended flow is retried. The paper says
#: "temporarily suspend" without a figure; one VSync-worth of typical
#: pipeline writes is a conservative re-probe interval.
SUSPEND_COOLDOWN = 20


class PrefetchStats:
    """Counters the §5.2 microbenchmarks report."""

    def __init__(self) -> None:
        self.predictions = 0
        self.hits = 0
        self.misses = 0
        self.cold_starts = 0
        self.launched = 0
        self.suspended_skips = 0
        self.bandwidth_skips = 0
        self.compensation_total_ms = 0.0
        self.compensations = 0
        self.wasted_prefetches = 0
        self.degraded_skips = 0
        self.prefetch_failures = 0

    @property
    def accuracy(self) -> Optional[float]:
        """Device-prediction accuracy (paper: 99-100%)."""
        if self.predictions == 0:
            return None
        return self.hits / self.predictions

    #: Modeled CPU cost of one engine invocation (hash lookups + a couple
    #: of float ops). ~2 µs on a modern core; used only for the §5.2
    #: "<1% CPU overhead" accounting, never charged to simulated time.
    CPU_COST_PER_EVENT_MS = 0.002

    @property
    def bookkeeping_events(self) -> int:
        return self.predictions + self.launched + self.cold_starts + self.suspended_skips

    def cpu_overhead_fraction(self, duration_ms: float) -> float:
        """Estimated fraction of one core spent on engine bookkeeping."""
        if duration_ms <= 0:
            return 0.0
        return self.bookkeeping_events * self.CPU_COST_PER_EVENT_MS / duration_ms


class PrefetchEngine:
    """Prediction + launch + compensation + suspension (§3.3)."""

    def __init__(
        self,
        sim: Simulator,
        twin: TwinHypergraphs,
        planner: CopyPlanner,
        vdev_location: Callable[[str], str],
        trace: TraceLog,
        failure_threshold: int = FAILURE_SUSPEND_THRESHOLD,
        bandwidth_ratio: float = BANDWIDTH_SUSPEND_RATIO,
        suspend_cooldown: int = SUSPEND_COOLDOWN,
        default_slack: float = VSYNC_PERIOD_MS,
        zero_shot: bool = True,
        degradation: Optional[DegradationController] = None,
        obs: Optional[Observability] = None,
    ):
        self._obs = obs if obs is not None else DISABLED
        self._sim = sim
        self._twin = twin
        self._planner = planner
        self._vdev_location = vdev_location
        self._trace = trace
        self.degradation = degradation
        self.failure_threshold = failure_threshold
        self.bandwidth_ratio = bandwidth_ratio
        self.suspend_cooldown = suspend_cooldown
        self.default_slack = default_slack
        # Flow-level (coarse-grained) history enables zero-shot predictions
        # for fresh regions (§3.3); False = per-region history only.
        self.zero_shot = zero_shot
        self.stats = PrefetchStats()
        self._failures: Dict[object, int] = {}
        self._suspended: Dict[object, int] = {}
        self._suspended_since: Dict[object, float] = {}
        self.suspension_time_ms = 0.0
        self._max_bandwidth: Dict[str, float] = {}

    # -- write-side: prediction and launch -------------------------------------
    def launch(self, region: SvmRegion, writer_vdev: str, writer_loc: str) -> None:
        """Called at host write retirement; spawns the ahead-of-time copy."""
        region.pending_compensation = 0.0
        if self._degraded():
            # The ladder stepped past the prefetched level: stay quiet until
            # the controller offers level 0 again as a probe.
            self.stats.degraded_skips += 1
            region.prefetch_predicted_vdevs = None
            return
        predicted = self._twin.predict_readers(
            region.region_id, writer_vdev, allow_zero_shot=self.zero_shot
        )
        if predicted is None or not predicted.reader_vdevs:
            self.stats.cold_starts += 1
            region.prefetch_predicted_vdevs = None
            return

        vkey = predicted.vedge.key if predicted.vedge is not None else None
        region.prefetch_predicted_vdevs = set(predicted.reader_vdevs)
        region.prefetch_vkey = vkey
        # Remember what we predicted for this generation so the read side
        # can score the slack estimate against the observed interval.
        region.prefetch_predicted_slack = (
            self._twin.predict_slack(predicted.vedge)
            if predicted.vedge is not None
            else None
        )

        if self._is_suspended(vkey):
            self.stats.suspended_skips += 1
            return

        targets = self._remote_targets(predicted.reader_vdevs, writer_loc)
        if not targets:
            return  # co-located readers: the in-GPU zero-copy case (§3.2)

        if not self._bandwidth_allows(writer_loc, targets):
            self.stats.bandwidth_skips += 1
            return

        pedge = predicted.pedge
        copies = [
            self._sim.spawn(
                self._prefetch_copy(region, writer_loc, target, pedge),
                name=f"prefetch:r{region.region_id}->{target}",
            )
            for target in sorted(targets)
        ]
        if len(copies) == 1:
            region.pending_prefetch = copies[0]
        else:
            region.pending_prefetch = self._sim.spawn(
                self._join_all(copies), name=f"prefetch:r{region.region_id}:join"
            )
        region.prefetch_targets = targets
        self.stats.launched += 1
        self._obs.registry.counter("prefetch.launched").inc()
        self._trace.record(
            self._sim.now,
            "prefetch.start",
            region=region.region_id,
            targets=sorted(targets),
            bytes=region.dirty_bytes,
        )

        region.pending_compensation = self._compensation(
            predicted.vedge, pedge, writer_loc, targets, region.dirty_bytes
        )
        if region.pending_compensation > 0:
            self.stats.compensations += 1
            self.stats.compensation_total_ms += region.pending_compensation

    def _degraded(self) -> bool:
        return (
            self.degradation is not None
            and self.degradation.plan_level() > LEVEL_PREFETCHED
        )

    def _prefetch_copy(self, region: SvmRegion, src: str, dst: str, pedge):
        span = self._obs.tracer.begin(
            "prefetch.copy", "prefetch", cat="coherence", flow=region.flow,
            region=region.region_id, src=src, dst=dst, bytes=region.dirty_bytes,
        )
        try:
            duration = yield from self._planner.copy_unified_resilient(
                src, dst, region.dirty_bytes
            )
        except RECOVERABLE_COPY_ERRORS as err:
            self._obs.tracer.end(span, failed=type(err).__name__)
            # A dead prefetch must not poison its joiners: readers re-check
            # validity after the join and fall back to sync maintenance.
            self.stats.prefetch_failures += 1
            if self.degradation is not None:
                self.degradation.note_failure(
                    LEVEL_PREFETCHED, reason=type(err).__name__
                )
            self._trace.record(
                self._sim.now,
                "prefetch.failed",
                bytes=region.dirty_bytes,
                region=region.region_id,
                target=dst,
                error=type(err).__name__,
            )
            return None
        self._obs.tracer.end(span, duration=duration)
        region.note_copy(dst)
        if self.degradation is not None:
            self.degradation.note_success(LEVEL_PREFETCHED)
        if pedge is not None:
            self._twin.note_prefetch_duration(pedge, duration)
        self._trace.record(
            self._sim.now,
            "coherence.maintenance",
            duration=duration,
            bytes=region.dirty_bytes,
            path="prefetch",
            region=region.region_id,
        )
        return duration

    @staticmethod
    def _join_all(copies):
        results = []
        for copy in copies:
            result = yield copy
            results.append(result)
        return results

    def _remote_targets(self, reader_vdevs: FrozenSet[str], writer_loc: str) -> Set[str]:
        return {
            loc
            for loc in (self._vdev_location(v) for v in reader_vdevs)
            if loc != writer_loc
        }

    def _bandwidth_allows(self, writer_loc: str, targets: Set[str]) -> bool:
        """The 50%-of-max available-bandwidth rule (§3.3)."""
        for target in targets:
            for bus in self._planner.unified_legs(writer_loc, target):
                seen_max = self._max_bandwidth.get(bus.name, 0.0)
                current = bus.effective_bandwidth
                if current > seen_max:
                    self._max_bandwidth[bus.name] = current
                    seen_max = current
                if seen_max > 0 and current < self.bandwidth_ratio * seen_max:
                    return False
        return True

    def _compensation(
        self, vedge, pedge, writer_loc: str, targets: Set[str], nbytes: int
    ) -> float:
        """``max(0, predicted prefetch time − predicted slack)`` (Figure 8)."""
        prefetch_time = self._twin.predict_prefetch_time(pedge)
        if prefetch_time is None:
            prefetch_time = max(
                self._planner.estimate_unified(writer_loc, t, nbytes) for t in targets
            )
        slack = self._twin.predict_slack(vedge)
        if slack is None:
            slack = self.default_slack
        return max(0.0, prefetch_time - slack)

    # -- driver-side prediction (guest context) ---------------------------------
    def predicted_compensation(
        self, region: SvmRegion, writer_vdev: str, writer_loc: str
    ) -> float:
        """What the guest driver should block for, computed at dispatch time.

        The driver consults the (guest-shared) hypergraph statistics before
        the host retires the write, so its view uses the same predictors as
        :meth:`launch` — both sides independently arrive at the Figure 8
        time delta. Returns 0 when no prediction exists or the flow is
        suspended (the driver then stays fully asynchronous).
        """
        predicted = self._twin.predict_readers(
            region.region_id, writer_vdev, allow_zero_shot=self.zero_shot
        )
        if predicted is None or not predicted.reader_vdevs:
            return 0.0
        vkey = predicted.vedge.key if predicted.vedge is not None else None
        if self._degraded() or self._is_suspended(vkey, consume=False):
            return 0.0
        targets = self._remote_targets(predicted.reader_vdevs, writer_loc)
        if not targets:
            return 0.0
        return self._compensation(
            predicted.vedge, predicted.pedge, writer_loc, targets, region.dirty_bytes
        )

    # -- read-side: accuracy accounting and suspension -----------------------------
    def on_read(
        self,
        region: SvmRegion,
        reader_vdev: str,
        reader_loc: str,
        slack: Optional[float] = None,
    ) -> None:
        """Score the generation's prediction on its first read.

        ``slack`` is the *observed* natural slack (write retirement → this
        read's arrival) the manager measured; scored against the slack the
        engine predicted at launch time, it feeds the live slack-estimate
        error instrument of §5.2.
        """
        predicted = region.prefetch_predicted_vdevs
        if predicted is None:
            return
        region.prefetch_predicted_vdevs = None  # score once per generation
        self.stats.predictions += 1
        vkey = region.prefetch_vkey
        if reader_vdev in predicted:
            self.stats.hits += 1
            if vkey is not None:
                self._failures[vkey] = 0
        else:
            self.stats.misses += 1
            if region.pending_prefetch is not None:
                self.stats.wasted_prefetches += 1
            if vkey is not None:
                failures = self._failures.get(vkey, 0) + 1
                self._failures[vkey] = failures
                if failures >= self.failure_threshold:
                    self._suspended[vkey] = self.suspend_cooldown
                    self._suspended_since[vkey] = self._sim.now
                    self._failures[vkey] = 0
                    self._trace.record(
                        self._sim.now, "prefetch.suspend", flow=str(vkey)
                    )
                    self._obs.tracer.instant(
                        "prefetch.suspend", "prefetch", cat="coherence", vkey=str(vkey),
                    )
        registry = self._obs.registry
        registry.gauge("prefetch.mispredict_rate").set(
            self.stats.misses / self.stats.predictions, time=self._sim.now
        )
        if slack is not None and region.prefetch_predicted_slack is not None:
            registry.histogram("prefetch.slack_error_ms").observe(
                abs(region.prefetch_predicted_slack - slack)
            )

    def _is_suspended(self, vkey, consume: bool = True) -> bool:
        """Whether this flow's prefetching is in cooldown.

        A cooldown of N skips exactly N writes. The host-side launch path
        passes ``consume=True``, spending one cooldown credit per skipped
        write; the guest-driver path (:meth:`predicted_compensation`)
        passes ``consume=False`` so both sides see the same verdict for
        the same write — the driver reads, the host decrements.
        """
        if vkey is None:
            return False
        remaining = self._suspended.get(vkey)
        if remaining is None:
            return False
        if remaining <= 0:
            del self._suspended[vkey]
            self._note_suspension_end(vkey)
            return False
        if consume:
            self._suspended[vkey] = remaining - 1
        return True

    def _note_suspension_end(self, vkey) -> None:
        """Fold a finished cooldown into the suspension-time instrument."""
        since = self._suspended_since.pop(vkey, None)
        if since is None:
            return
        elapsed = self._sim.now - since
        self.suspension_time_ms += elapsed
        self._obs.registry.counter("prefetch.suspension_time_ms").inc(elapsed)

    # -- crash recovery ----------------------------------------------------------
    def reset_vdev_history(self, vdev: str) -> int:
        """Drop failure/suspension history for flows involving ``vdev``.

        Called when a crashed device is re-admitted: its pre-crash
        mispredictions must not keep its flows suspended, and its flow keys
        are about to be removed from the twin anyway. Returns the number of
        flow entries cleared.
        """
        def touches(vkey: object) -> bool:
            if not isinstance(vkey, tuple) or len(vkey) != 2:
                return False
            sources, destinations = vkey
            return vdev in sources or vdev in destinations

        doomed = {k for k in self._failures if touches(k)}
        doomed |= {k for k in self._suspended if touches(k)}
        for vkey in doomed:
            self._failures.pop(vkey, None)
            self._suspended.pop(vkey, None)
            self._note_suspension_end(vkey)
        return len(doomed)

    # -- checkpointing -----------------------------------------------------------
    def snapshot_state(self) -> Dict[str, object]:
        """Deterministic, JSON-able image of the engine's learned state."""
        from repro.core.hypergraph import serialize_edge_key

        def key_str(vkey: object) -> str:
            return repr(serialize_edge_key(vkey))

        return {
            "stats": {
                name: getattr(self.stats, name)
                for name in sorted(vars(self.stats))
            },
            "failures": {
                key_str(k): v for k, v in sorted(
                    self._failures.items(), key=lambda kv: key_str(kv[0])
                )
            },
            "suspended": {
                key_str(k): v for k, v in sorted(
                    self._suspended.items(), key=lambda kv: key_str(kv[0])
                )
            },
            "suspension_time_ms": self.suspension_time_ms,
            "max_bandwidth": dict(sorted(self._max_bandwidth.items())),
        }

    def restore_state(self, state: Dict[str, object]) -> None:
        """Reinstate learned state captured by :meth:`snapshot_state`.

        Flow keys were serialized as ``repr`` of their JSON-able form;
        ``ast.literal_eval`` (no arbitrary code execution) reverses that.
        ``_suspended_since`` is wall-of-sim-clock bookkeeping for the
        suspension-time instrument and intentionally restarts empty.
        """
        import ast

        from repro.core.hypergraph import deserialize_edge_key

        def parse_key(text: str) -> object:
            return deserialize_edge_key(ast.literal_eval(text))

        for name, value in state["stats"].items():
            setattr(self.stats, name, value)
        self._failures = {parse_key(k): v for k, v in state["failures"].items()}
        self._suspended = {parse_key(k): v for k, v in state["suspended"].items()}
        self._suspended_since = {}
        self.suspension_time_ms = state["suspension_time_ms"]
        self._max_bandwidth = dict(state["max_bandwidth"])
