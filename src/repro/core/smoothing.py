"""Single exponential smoothing — the paper's forecasting algorithm (§3.3).

Slack intervals and bus bandwidths are univariate time series with no trend
or seasonality, so the paper uses single exponential smoothing with
α = 0.5. The predictor keeps a running estimate

    s_t = α · x_t + (1 − α) · s_{t−1}

and forecasts the next value as the current estimate. We also track the
running standard error of the one-step-ahead forecast, which §5.2 reports
(0.9 ms for slack intervals, 0.3 ms for prefetch time).
"""

from __future__ import annotations

import math
from typing import Optional

from repro.errors import ConfigurationError

#: The paper's empirically chosen smoothing weight.
DEFAULT_ALPHA = 0.5


class ExponentialSmoothing:
    """Single exponential smoothing with forecast-error tracking."""

    def __init__(self, alpha: float = DEFAULT_ALPHA):
        if not 0.0 < alpha <= 1.0:
            raise ConfigurationError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        self._level: Optional[float] = None
        self.n = 0
        self._err_sum_sq = 0.0
        self._err_count = 0

    def update(self, value: float) -> None:
        """Fold in one observation."""
        if self._level is None:
            self._level = value
        else:
            error = value - self._level
            self._err_sum_sq += error * error
            self._err_count += 1
            self._level = self.alpha * value + (1.0 - self.alpha) * self._level
        self.n += 1

    def predict(self) -> Optional[float]:
        """One-step-ahead forecast; ``None`` before any observation."""
        return self._level

    def predict_or(self, default: float) -> float:
        """Forecast with a fallback for the cold-start case."""
        return self._level if self._level is not None else default

    @property
    def std_error(self) -> Optional[float]:
        """RMS one-step forecast error; ``None`` with fewer than 2 samples."""
        if self._err_count == 0:
            return None
        return math.sqrt(self._err_sum_sq / self._err_count)

    @property
    def warmed_up(self) -> bool:
        """True once at least one observation has been folded in."""
        return self._level is not None

    def state_dict(self) -> dict:
        """JSON-able predictor state for checkpointing."""
        return {
            "alpha": self.alpha,
            "level": self._level,
            "n": self.n,
            "err_sum_sq": self._err_sum_sq,
            "err_count": self._err_count,
        }

    def load_state(self, state: dict) -> None:
        """Reinstate predictor state captured by :meth:`state_dict`."""
        self.alpha = state["alpha"]
        self._level = state["level"]
        self.n = state["n"]
        self._err_sum_sq = state["err_sum_sq"]
        self._err_count = state["err_count"]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ExponentialSmoothing a={self.alpha} level={self._level} n={self.n}>"
