"""The paper's primary contribution: the unified SVM framework.

Components map one-to-one onto §3 of the vSoC paper:

* :mod:`~repro.core.manager` — the SVM Manager (§3.2): unified region
  lifecycle, host-side hashtable, per-region metadata.
* :mod:`~repro.core.twin` — the twin hypergraphs (§3.2): virtual and
  physical data-flow layers plus the region→flow hashtable.
* :mod:`~repro.core.prefetch` — the prefetch engine (§3.3): robust
  prediction, adaptive synchronism (compensation), suspension policy.
* :mod:`~repro.core.fence` — virtual command fences (§3.4): signal/wait
  pairs, the page-limited virtual fence table, physical fence tables.
* :mod:`~repro.core.coherence` — coherence protocols: the prefetch
  protocol, the write-invalidate baseline, and the copy-path planner.
* :mod:`~repro.core.flowcontrol` — Trinity's MIMD flow control, used to
  pace guest dispatch (§3.4).
"""

from repro.core.coherence import (
    CoherenceProtocol,
    CopyPlanner,
    GuestMemoryWriteInvalidate,
    UnifiedPrefetchProtocol,
    UnifiedWriteInvalidate,
)
from repro.core.fence import (
    FenceState,
    PhysicalFenceTable,
    VirtualFence,
    VirtualFenceTable,
)
from repro.core.flowcontrol import MimdFlowControl
from repro.core.hypergraph import DirectedHypergraph, Hyperedge
from repro.core.manager import SvmManager
from repro.core.ordering import OrderingMode
from repro.core.prefetch import PrefetchEngine
from repro.core.region import AccessUsage, SvmRegion, location_of
from repro.core.smoothing import ExponentialSmoothing
from repro.core.twin import TwinHypergraphs

__all__ = [
    "SvmManager",
    "SvmRegion",
    "AccessUsage",
    "location_of",
    "TwinHypergraphs",
    "DirectedHypergraph",
    "Hyperedge",
    "ExponentialSmoothing",
    "PrefetchEngine",
    "CoherenceProtocol",
    "CopyPlanner",
    "UnifiedPrefetchProtocol",
    "UnifiedWriteInvalidate",
    "GuestMemoryWriteInvalidate",
    "VirtualFence",
    "VirtualFenceTable",
    "PhysicalFenceTable",
    "FenceState",
    "OrderingMode",
    "MimdFlowControl",
]
