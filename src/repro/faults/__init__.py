"""Deterministic fault injection for the vSoC reproduction.

Build a :class:`FaultPlan` (what goes wrong, when, with what probability),
hand it to a :class:`FaultInjector` with a seed, and install it against an
emulator. Same plan + same seed ⇒ identical run, so chaos scenarios are
regression tests, not dice rolls.
"""

from repro.faults.injector import FaultInjector, InjectionStats
from repro.faults.plan import (
    BusLoadEvent,
    CopyFaultWindow,
    DeviceCrashEvent,
    DeviceResetEvent,
    DeviceStallEvent,
    FaultPlan,
    TransportFaultWindow,
    WorkerFaultEvent,
)

__all__ = [
    "FaultPlan",
    "FaultInjector",
    "InjectionStats",
    "BusLoadEvent",
    "CopyFaultWindow",
    "DeviceCrashEvent",
    "DeviceStallEvent",
    "DeviceResetEvent",
    "TransportFaultWindow",
    "WorkerFaultEvent",
]
