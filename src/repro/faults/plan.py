"""Declarative fault plans.

A :class:`FaultPlan` is a validated, immutable-after-build description of
*what goes wrong when*: bus load changes and flapping, windows of transient
copy failures, device stalls/resets, and guest-transport drop/delay windows.
Plans carry no randomness themselves — probabilities are resolved by the
:class:`~repro.faults.injector.FaultInjector` with its seeded RNG, so one
plan replayed with one seed yields one trace, bit for bit.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Mapping, Optional

from repro.errors import ConfigurationError


def _check_time(label: str, value: float) -> None:
    if not math.isfinite(value) or value < 0:
        raise ConfigurationError(f"{label} must be finite and >= 0, got {value}")


def _check_probability(label: str, value: float) -> None:
    if not math.isfinite(value) or not 0.0 <= value <= 1.0:
        raise ConfigurationError(f"{label} must be in [0, 1], got {value}")


@dataclass(frozen=True)
class BusLoadEvent:
    """At ``time_ms``, set bus ``bus`` to external load ``load``."""

    time_ms: float
    bus: str
    load: float


@dataclass(frozen=True)
class CopyFaultWindow:
    """During [start_ms, end_ms), transfers fail with ``probability``.

    ``bus=None`` applies to every bus the injector is installed on. A
    failing transfer burns a deterministic-per-draw fraction of its wire
    time before raising, so faults still contend for bandwidth.
    """

    start_ms: float
    end_ms: float
    probability: float
    bus: Optional[str] = None


@dataclass(frozen=True)
class DeviceStallEvent:
    """At ``time_ms``, wedge ``device`` for ``duration_ms`` (lock held)."""

    time_ms: float
    device: str
    duration_ms: float


@dataclass(frozen=True)
class DeviceResetEvent:
    """At ``time_ms``, reset ``device``: ``downtime_ms`` stall + thermal clear."""

    time_ms: float
    device: str
    downtime_ms: float


@dataclass(frozen=True)
class DeviceCrashEvent:
    """At ``time_ms``, kill virtual device ``vdev`` mid-frame.

    Unlike a :class:`DeviceResetEvent` (which wedges a *physical* engine),
    a crash kills the *virtual* device's host executor outright: its command
    queue is lost, outstanding fences must be poisoned, and the
    :class:`~repro.recovery.coordinator.RecoveryCoordinator` re-admits the
    device after ``downtime_ms``.
    """

    time_ms: float
    vdev: str
    downtime_ms: float


#: Legal ``kind`` values for a :class:`WorkerFaultEvent`.
WORKER_FAULT_KINDS = ("crash", "hang", "slow-heartbeat")


@dataclass(frozen=True)
class WorkerFaultEvent:
    """At ``time_ms``, disturb fleet worker ``worker`` for ``duration_ms``.

    Three kinds, matching the failure modes a supervisor must tell apart:

    * ``crash`` — the worker process dies: heartbeats stop, sessions are
      stranded until the supervisor drains them; ``duration_ms`` is the
      minimum downtime before a restart can succeed.
    * ``hang`` — the worker wedges (no ticks, no beats) but comes back by
      itself after ``duration_ms`` — the supervisor may have declared it
      dead in the meantime, and the revenant must stand down.
    * ``slow-heartbeat`` — beats keep flowing but ``factor``× late for the
      window, probing the supervisor's false-positive margin.

    Worker faults are consumed by :class:`repro.fleet.service.FleetService`
    (the :class:`~repro.faults.injector.FaultInjector` targets emulator
    internals and ignores them).
    """

    time_ms: float
    worker: str
    kind: str
    duration_ms: float
    factor: float = 1.0


@dataclass(frozen=True)
class TransportFaultWindow:
    """During [start_ms, end_ms), kicks drop or stretch with given odds."""

    start_ms: float
    end_ms: float
    drop_probability: float = 0.0
    delay_probability: float = 0.0
    delay_ms: float = 0.0


class FaultPlan:
    """Chainable builder for a deterministic fault timeline.

    Example::

        plan = (
            FaultPlan()
            .flap_bus("pcie", start_ms=1500, period_ms=500, cycles=6, high_load=0.85)
            .copy_faults(2000, 4500, probability=0.7, bus="pcie")
            .stall_device(3000, "gpu", duration_ms=120)
            .transport_faults(2500, 4000, drop_probability=0.25)
        )
    """

    def __init__(self) -> None:
        self.bus_loads: List[BusLoadEvent] = []
        self.copy_windows: List[CopyFaultWindow] = []
        self.stalls: List[DeviceStallEvent] = []
        self.resets: List[DeviceResetEvent] = []
        self.transport_windows: List[TransportFaultWindow] = []
        self.crashes: List[DeviceCrashEvent] = []
        self.worker_faults: List[WorkerFaultEvent] = []

    # -- bus degradation -----------------------------------------------------
    def set_bus_load(self, time_ms: float, bus: str, load: float) -> "FaultPlan":
        """Schedule one external-load change on a bus."""
        _check_time("bus load time", time_ms)
        if not math.isfinite(load) or not 0.0 <= load < 1.0:
            raise ConfigurationError(f"bus load must be finite and in [0, 1), got {load}")
        self.bus_loads.append(BusLoadEvent(time_ms, bus, load))
        return self

    def flap_bus(
        self,
        bus: str,
        start_ms: float,
        period_ms: float,
        cycles: int,
        high_load: float,
        low_load: float = 0.0,
    ) -> "FaultPlan":
        """Alternate a bus between ``high_load`` and ``low_load``.

        Each cycle holds ``high_load`` for half a period, then ``low_load``
        for the other half — the load-raised-then-dropped pattern the
        bandwidth-suspension rule must survive.
        """
        _check_time("flap start", start_ms)
        if not math.isfinite(period_ms) or period_ms <= 0:
            raise ConfigurationError(f"flap period must be finite and > 0, got {period_ms}")
        if cycles < 1:
            raise ConfigurationError(f"flap cycles must be >= 1, got {cycles}")
        half = period_ms / 2.0
        for i in range(cycles):
            t = start_ms + i * period_ms
            self.set_bus_load(t, bus, high_load)
            self.set_bus_load(t + half, bus, low_load)
        return self

    # -- transient copy failures ---------------------------------------------
    def copy_faults(
        self,
        start_ms: float,
        end_ms: float,
        probability: float,
        bus: Optional[str] = None,
    ) -> "FaultPlan":
        """Fail transfers with ``probability`` during [start_ms, end_ms)."""
        _check_time("copy-fault window start", start_ms)
        _check_time("copy-fault window end", end_ms)
        if end_ms <= start_ms:
            raise ConfigurationError(
                f"copy-fault window must have end > start, got [{start_ms}, {end_ms})"
            )
        _check_probability("copy-fault probability", probability)
        self.copy_windows.append(CopyFaultWindow(start_ms, end_ms, probability, bus))
        return self

    # -- device stalls and resets --------------------------------------------
    def stall_device(self, time_ms: float, device: str, duration_ms: float) -> "FaultPlan":
        """Wedge a physical device's engine for ``duration_ms``."""
        _check_time("stall time", time_ms)
        if not math.isfinite(duration_ms) or duration_ms <= 0:
            raise ConfigurationError(
                f"stall duration must be finite and > 0, got {duration_ms}"
            )
        self.stalls.append(DeviceStallEvent(time_ms, device, duration_ms))
        return self

    def reset_device(self, time_ms: float, device: str, downtime_ms: float) -> "FaultPlan":
        """Reset a physical device (stall + thermal state clear)."""
        _check_time("reset time", time_ms)
        if not math.isfinite(downtime_ms) or downtime_ms <= 0:
            raise ConfigurationError(
                f"reset downtime must be finite and > 0, got {downtime_ms}"
            )
        self.resets.append(DeviceResetEvent(time_ms, device, downtime_ms))
        return self

    def crash_device(self, time_ms: float, vdev: str, downtime_ms: float) -> "FaultPlan":
        """Kill a *virtual* device's executor mid-frame (recovery drill)."""
        _check_time("crash time", time_ms)
        if not math.isfinite(downtime_ms) or downtime_ms <= 0:
            raise ConfigurationError(
                f"crash downtime must be finite and > 0, got {downtime_ms}"
            )
        self.crashes.append(DeviceCrashEvent(time_ms, vdev, downtime_ms))
        return self

    # -- fleet-worker faults -------------------------------------------------
    def _worker_fault(
        self, time_ms: float, worker: str, kind: str,
        duration_ms: float, factor: float = 1.0,
    ) -> "FaultPlan":
        _check_time(f"worker {kind} time", time_ms)
        if kind not in WORKER_FAULT_KINDS:
            raise ConfigurationError(
                f"worker fault kind must be one of {WORKER_FAULT_KINDS}, got {kind!r}"
            )
        if not math.isfinite(duration_ms) or duration_ms <= 0:
            raise ConfigurationError(
                f"worker {kind} duration must be finite and > 0, got {duration_ms}"
            )
        if not math.isfinite(factor) or factor < 1.0:
            raise ConfigurationError(
                f"worker fault factor must be finite and >= 1, got {factor}"
            )
        self.worker_faults.append(
            WorkerFaultEvent(time_ms, worker, kind, duration_ms, factor)
        )
        return self

    def crash_worker(self, time_ms: float, worker: str, downtime_ms: float) -> "FaultPlan":
        """Kill fleet worker ``worker``: sessions strand, beats stop."""
        return self._worker_fault(time_ms, worker, "crash", downtime_ms)

    def hang_worker(self, time_ms: float, worker: str, duration_ms: float) -> "FaultPlan":
        """Wedge fleet worker ``worker`` (no ticks/beats) for ``duration_ms``."""
        return self._worker_fault(time_ms, worker, "hang", duration_ms)

    def slow_heartbeat(
        self, time_ms: float, worker: str, duration_ms: float, factor: float = 3.0
    ) -> "FaultPlan":
        """Stretch ``worker``'s heartbeat interval by ``factor`` for a window."""
        return self._worker_fault(time_ms, worker, "slow-heartbeat", duration_ms, factor)

    # -- transport faults ----------------------------------------------------
    def transport_faults(
        self,
        start_ms: float,
        end_ms: float,
        drop_probability: float = 0.0,
        delay_probability: float = 0.0,
        delay_ms: float = 0.0,
    ) -> "FaultPlan":
        """Drop or delay guest→host kicks during [start_ms, end_ms)."""
        _check_time("transport window start", start_ms)
        _check_time("transport window end", end_ms)
        if end_ms <= start_ms:
            raise ConfigurationError(
                f"transport window must have end > start, got [{start_ms}, {end_ms})"
            )
        _check_probability("drop probability", drop_probability)
        _check_probability("delay probability", delay_probability)
        _check_time("transport delay", delay_ms)
        if delay_probability > 0 and delay_ms <= 0:
            raise ConfigurationError("delay_ms must be > 0 when delays are enabled")
        self.transport_windows.append(
            TransportFaultWindow(start_ms, end_ms, drop_probability, delay_probability, delay_ms)
        )
        return self

    # -- whole-plan validation ------------------------------------------------
    def validate(self) -> "FaultPlan":
        """Cross-event consistency checks, run once the plan is complete.

        Per-field validation happens in each builder call; this pass catches
        the *relationships* a finished timeline must satisfy — ambiguous
        same-instant bus loads, overlapping fault windows on one target, and
        out-of-chronological-order event lists (a plan assembled out of
        order almost always means two builders disagreed about units).
        Raises :class:`ConfigurationError` naming the offending window.
        The injector calls this from ``install``; call it directly to fail
        earlier. Returns ``self`` so it chains.
        """
        self._check_ordered("bus_loads", self.bus_loads, lambda e: (e.bus, e.time_ms))
        self._check_ordered("copy_faults", self.copy_windows, lambda w: (w.bus or "*", w.start_ms))
        self._check_ordered("stalls", self.stalls, lambda s: (s.device, s.time_ms))
        self._check_ordered("resets", self.resets, lambda r: (r.device, r.time_ms))
        self._check_ordered("crashes", self.crashes, lambda c: (c.vdev, c.time_ms))
        self._check_ordered("transport_faults", self.transport_windows, lambda w: (None, w.start_ms))
        self._check_ordered(
            "worker_faults", self.worker_faults, lambda f: (f.worker, f.time_ms)
        )

        seen_loads = {}
        for event in self.bus_loads:
            key = (event.bus, event.time_ms)
            prior = seen_loads.get(key)
            if prior is not None and prior.load != event.load:
                raise ConfigurationError(
                    f"ambiguous bus loads at t={event.time_ms} on {event.bus!r}: "
                    f"{prior.load} vs {event.load}"
                )
            seen_loads[key] = event

        self._check_window_overlap(
            "copy-fault",
            self.copy_windows,
            lambda w: w.bus,
            lambda w: (w.start_ms, w.end_ms),
            wildcard_none=True,
        )
        self._check_window_overlap(
            "transport-fault",
            self.transport_windows,
            lambda w: None,
            lambda w: (w.start_ms, w.end_ms),
            wildcard_none=False,
        )
        device_windows = (
            [("stall", s.device, s.time_ms, s.time_ms + s.duration_ms, s) for s in self.stalls]
            + [("reset", r.device, r.time_ms, r.time_ms + r.downtime_ms, r) for r in self.resets]
        )
        device_windows.sort(key=lambda entry: (entry[1], entry[2], entry[3]))
        for (kind_a, dev_a, start_a, end_a, ev_a), (kind_b, dev_b, start_b, end_b, ev_b) in zip(
            device_windows, device_windows[1:]
        ):
            if dev_a == dev_b and start_b < end_a:
                raise ConfigurationError(
                    f"overlapping {kind_a}/{kind_b} windows on device {dev_a!r}: "
                    f"{ev_a} overlaps {ev_b}"
                )
        crash_windows = sorted(
            self.crashes, key=lambda c: (c.vdev, c.time_ms)
        )
        for a, b in zip(crash_windows, crash_windows[1:]):
            if a.vdev == b.vdev and b.time_ms < a.time_ms + a.downtime_ms:
                raise ConfigurationError(
                    f"crash at t={b.time_ms} on vdev {b.vdev!r} lands inside the "
                    f"recovery downtime of {a} — one recovery at a time per device"
                )
        worker_windows = sorted(
            self.worker_faults, key=lambda f: (f.worker, f.time_ms)
        )
        for a, b in zip(worker_windows, worker_windows[1:]):
            if a.worker == b.worker and b.time_ms < a.time_ms + a.duration_ms:
                raise ConfigurationError(
                    f"worker fault {b.kind!r} at t={b.time_ms} on {b.worker!r} "
                    f"lands inside the window of {a} — one fault at a time "
                    "per worker"
                )
        return self

    @staticmethod
    def _check_ordered(label, events, key):
        """Events for one target must be appended in chronological order."""
        last = {}
        for event in events:
            target, time_ms = key(event)
            prior = last.get(target)
            if prior is not None and time_ms < prior:
                raise ConfigurationError(
                    f"{label} out of order: {event} starts at {time_ms} ms but an "
                    f"earlier entry for the same target already starts at {prior} ms"
                )
            last[target] = time_ms

    @staticmethod
    def _check_window_overlap(label, windows, target_of, span_of, wildcard_none):
        """No two windows on one target (None = every target) may overlap."""
        for i, a in enumerate(windows):
            for b in windows[i + 1:]:
                ta, tb = target_of(a), target_of(b)
                if ta != tb and not (wildcard_none and (ta is None or tb is None)):
                    continue
                start_a, end_a = span_of(a)
                start_b, end_b = span_of(b)
                if start_a < end_b and start_b < end_a:
                    raise ConfigurationError(
                        f"overlapping {label} windows: {a} overlaps {b}"
                    )

    # -- serialization ---------------------------------------------------------
    #: Section name -> event-list attribute. The serialized form mirrors the
    #: builder-expanded event lists (``flap_bus`` round-trips as its
    #: individual ``bus_loads``), so ``from_dict(to_dict(p))`` rebuilds the
    #: exact same timeline.
    _SECTIONS = (
        "bus_loads",
        "copy_windows",
        "stalls",
        "resets",
        "transport_windows",
        "crashes",
        "worker_faults",
    )

    def to_dict(self) -> Dict[str, List[Dict[str, Any]]]:
        """The plan as plain JSON-able data (scenario files, reproducers).

        Empty sections are omitted, so an empty plan serializes to ``{}``.
        """
        doc: Dict[str, List[Dict[str, Any]]] = {}
        for section in self._SECTIONS:
            events = getattr(self, section)
            if events:
                doc[section] = [asdict(event) for event in events]
        return doc

    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> "FaultPlan":
        """Rebuild a plan from :meth:`to_dict` output; runs :meth:`validate`.

        Every entry goes back through the corresponding builder, so
        per-field checks apply exactly as if the plan had been written in
        Python — then the whole-plan :meth:`validate` pass runs. Raises
        :class:`~repro.errors.ConfigurationError` naming the offending
        section/entry on any malformed document.
        """
        if not isinstance(doc, Mapping):
            raise ConfigurationError(
                f"fault plan document must be a mapping, got {type(doc).__name__}"
            )
        unknown = sorted(set(doc) - set(cls._SECTIONS))
        if unknown:
            raise ConfigurationError(
                f"fault plan document has unknown sections {unknown}; "
                f"known: {list(cls._SECTIONS)}"
            )
        plan = cls()
        for section in cls._SECTIONS:
            entries = doc.get(section, ())
            if not isinstance(entries, (list, tuple)):
                raise ConfigurationError(
                    f"fault plan section {section!r} must be a list, "
                    f"got {type(entries).__name__}"
                )
            for index, entry in enumerate(entries):
                if not isinstance(entry, Mapping):
                    raise ConfigurationError(
                        f"fault plan {section}[{index}] must be a mapping, "
                        f"got {type(entry).__name__}"
                    )
                try:
                    plan._append_entry(section, dict(entry))
                except ConfigurationError as err:
                    raise ConfigurationError(
                        f"fault plan {section}[{index}]: {err}"
                    ) from None
                except (KeyError, TypeError, ValueError) as err:
                    raise ConfigurationError(
                        f"fault plan {section}[{index}] is malformed: {err!r}"
                    ) from None
        return plan.validate()

    def _append_entry(self, section: str, entry: Dict[str, Any]) -> None:
        """One serialized event back through its builder (field checks)."""

        def need(keys: tuple, optional: tuple = ()) -> None:
            missing = [k for k in keys if k not in entry]
            extra = sorted(set(entry) - set(keys) - set(optional))
            if missing or extra:
                raise ConfigurationError(
                    f"expected keys {list(keys)}"
                    + (f" (optional {list(optional)})" if optional else "")
                    + f"; missing {missing}, unknown {extra}"
                )

        if section == "bus_loads":
            need(("time_ms", "bus", "load"))
            self.set_bus_load(float(entry["time_ms"]), str(entry["bus"]),
                              float(entry["load"]))
        elif section == "copy_windows":
            need(("start_ms", "end_ms", "probability"), optional=("bus",))
            bus = entry.get("bus")
            self.copy_faults(float(entry["start_ms"]), float(entry["end_ms"]),
                             float(entry["probability"]),
                             bus=None if bus is None else str(bus))
        elif section == "stalls":
            need(("time_ms", "device", "duration_ms"))
            self.stall_device(float(entry["time_ms"]), str(entry["device"]),
                              float(entry["duration_ms"]))
        elif section == "resets":
            need(("time_ms", "device", "downtime_ms"))
            self.reset_device(float(entry["time_ms"]), str(entry["device"]),
                              float(entry["downtime_ms"]))
        elif section == "transport_windows":
            need(("start_ms", "end_ms"),
                 optional=("drop_probability", "delay_probability", "delay_ms"))
            self.transport_faults(
                float(entry["start_ms"]), float(entry["end_ms"]),
                drop_probability=float(entry.get("drop_probability", 0.0)),
                delay_probability=float(entry.get("delay_probability", 0.0)),
                delay_ms=float(entry.get("delay_ms", 0.0)),
            )
        elif section == "crashes":
            need(("time_ms", "vdev", "downtime_ms"))
            self.crash_device(float(entry["time_ms"]), str(entry["vdev"]),
                              float(entry["downtime_ms"]))
        else:  # worker_faults
            need(("time_ms", "worker", "kind", "duration_ms"),
                 optional=("factor",))
            self._worker_fault(
                float(entry["time_ms"]), str(entry["worker"]),
                str(entry["kind"]), float(entry["duration_ms"]),
                factor=float(entry.get("factor", 1.0)),
            )

    # -- introspection --------------------------------------------------------
    def last_fault_time(self) -> float:
        """When the plan's last injected disturbance ends (ms).

        Chaos reports use this to split a run into the fault phase and the
        post-clearance steady state.
        """
        times = [e.time_ms for e in self.bus_loads]
        times += [w.end_ms for w in self.copy_windows]
        times += [s.time_ms + s.duration_ms for s in self.stalls]
        times += [r.time_ms + r.downtime_ms for r in self.resets]
        times += [w.end_ms for w in self.transport_windows]
        times += [c.time_ms + c.downtime_ms for c in self.crashes]
        times += [f.time_ms + f.duration_ms for f in self.worker_faults]
        return max(times, default=0.0)

    def is_empty(self) -> bool:
        return not (
            self.bus_loads
            or self.copy_windows
            or self.stalls
            or self.resets
            or self.transport_windows
            or self.crashes
            or self.worker_faults
        )
