"""Seeded fault injection against a live emulator or machine.

The :class:`FaultInjector` turns a :class:`~repro.faults.plan.FaultPlan`
into concrete scheduled events and hooks:

* bus-load events become :meth:`Simulator.schedule` callbacks calling
  ``Bus.set_load``;
* copy-fault windows become per-bus ``fault_hook`` installations that draw
  from the injector's seeded RNG *only inside a window* — outside every
  window no random numbers are consumed, so non-chaos phases of a run stay
  on the exact fault-free trajectory;
* device stalls/resets become scheduled ``inject_stall``/``inject_reset``;
* transport windows become a ``VirtioTransport.fault_hook``.

Every injected disturbance is recorded in the trace (kinds ``fault.*``),
which is what the determinism test asserts: same plan + same seed ⇒
identical trace.
"""

from __future__ import annotations

import random
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.faults.plan import CopyFaultWindow, FaultPlan, TransportFaultWindow
from repro.hw.bus import Bus
from repro.hw.device import PhysicalDevice
from repro.sim import Simulator
from repro.sim.tracing import TraceLog


class InjectionStats:
    """What the injector actually did (vs what the plan allowed)."""

    def __init__(self) -> None:
        self.load_changes = 0
        self.copy_faults = 0
        self.transport_drops = 0
        self.transport_delays = 0
        self.stalls = 0
        self.resets = 0
        self.crashes = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "load_changes": self.load_changes,
            "copy_faults": self.copy_faults,
            "transport_drops": self.transport_drops,
            "transport_delays": self.transport_delays,
            "stalls": self.stalls,
            "resets": self.resets,
            "crashes": self.crashes,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(f"{k}={v}" for k, v in self.as_dict().items())
        return f"<InjectionStats {parts}>"


class FaultInjector:
    """Executes one :class:`FaultPlan` deterministically against targets.

    One injector = one seeded RNG = one reproducible chaos run. Call
    :meth:`install` with an emulator (hooks its planner's buses, machine
    buses, devices, and transport) — or :meth:`install_buses` /
    :meth:`install_devices` / :meth:`install_transport` piecemeal for
    lower-level tests.
    """

    def __init__(
        self,
        sim: Simulator,
        plan: FaultPlan,
        seed: int = 0,
        trace: Optional[TraceLog] = None,
    ):
        self._sim = sim
        self.plan = plan
        self.seed = seed
        self.trace = trace
        self._rng = random.Random(seed)
        self.stats = InjectionStats()
        self._installed = False
        #: Set by :meth:`install_crashes` when the plan contains device
        #: crashes — the coordinator that quarantines/re-admits the victims.
        self.coordinator: Optional[Any] = None

    # -- top-level install ---------------------------------------------------
    def install(self, emulator: Any) -> None:
        """Arm the whole plan against one emulator instance."""
        if self._installed:
            raise ConfigurationError("this injector is already installed")
        self._installed = True
        self.plan.validate()
        # An armed fault plan makes the run aperiodic by design: no
        # steady-state cycle may ever be skipped past an injection point.
        self._sim.veto_fast_forward("fault-injection")
        machine = emulator.machine
        buses: Dict[str, Bus] = {}
        for bus in (machine.memctl, machine.pcie, machine.boundary, emulator.planner.boundary):
            if bus is not None:
                buses[bus.name] = bus
        self._install_bus_events(buses)
        self._install_copy_hooks(buses.values())
        self.install_devices(machine.devices)
        self.install_transport(emulator.transport)
        self.install_crashes(emulator)

    # -- piecemeal installs (machine-level tests) ------------------------------
    def install_buses(self, buses: Iterable[Bus]) -> None:
        by_name = {bus.name: bus for bus in buses}
        self._install_bus_events(by_name)
        self._install_copy_hooks(by_name.values())

    def install_devices(self, devices: Dict[str, PhysicalDevice]) -> None:
        for stall in self.plan.stalls:
            device = devices.get(stall.device)
            if device is None:
                raise ConfigurationError(
                    f"fault plan stalls unknown device {stall.device!r}"
                )
            self._sim.schedule(
                self._delay_until(stall.time_ms), self._do_stall, device, stall.duration_ms
            )
        for reset in self.plan.resets:
            device = devices.get(reset.device)
            if device is None:
                raise ConfigurationError(
                    f"fault plan resets unknown device {reset.device!r}"
                )
            self._sim.schedule(
                self._delay_until(reset.time_ms), self._do_reset, device, reset.downtime_ms
            )

    def install_transport(self, transport: Any) -> None:
        if not self.plan.transport_windows:
            return
        windows = list(self.plan.transport_windows)

        def hook(tp: Any, batch_size: int) -> Optional[Tuple[Any, ...]]:
            window = self._active_transport_window(windows)
            if window is None:
                return None
            if window.drop_probability > 0 and self._rng.random() < window.drop_probability:
                self.stats.transport_drops += 1
                self._record("fault.transport_drop", batch=batch_size)
                return ("drop",)
            if window.delay_probability > 0 and self._rng.random() < window.delay_probability:
                self.stats.transport_delays += 1
                self._record("fault.transport_delay", batch=batch_size, delay=window.delay_ms)
                return ("delay", window.delay_ms)
            return None

        transport.fault_hook = hook

    def install_crashes(self, emulator: Any) -> None:
        """Schedule the plan's virtual-device crashes via a coordinator.

        Crash events consume no RNG — their timing and victim are fully
        declarative — so plans without crashes keep the exact random-draw
        sequence they had before this feature existed.
        """
        if not self.plan.crashes:
            return
        from repro.recovery.coordinator import RecoveryCoordinator

        known = set(emulator.vdev_names())
        for crash in self.plan.crashes:
            if crash.vdev not in known:
                raise ConfigurationError(
                    f"fault plan crashes unknown virtual device {crash.vdev!r}; "
                    f"known: {sorted(known)}"
                )
        self.coordinator = RecoveryCoordinator(emulator, trace=self.trace)
        for crash in self.plan.crashes:
            self._sim.schedule(self._delay_until(crash.time_ms), self._do_crash, crash)

    # -- bus internals --------------------------------------------------------
    def _install_bus_events(self, buses: Dict[str, Bus]) -> None:
        for event in self.plan.bus_loads:
            bus = buses.get(event.bus)
            if bus is None:
                raise ConfigurationError(
                    f"fault plan targets unknown bus {event.bus!r}; "
                    f"known: {sorted(buses)}"
                )
            self._sim.schedule(
                self._delay_until(event.time_ms), self._do_set_load, bus, event.load
            )

    def _install_copy_hooks(self, buses: Iterable[Bus]) -> None:
        if not self.plan.copy_windows:
            return
        for bus in buses:
            windows = [
                w for w in self.plan.copy_windows
                if w.bus is None or w.bus == bus.name
            ]
            if windows:
                bus.fault_hook = self._make_copy_hook(windows)

    def _make_copy_hook(self, windows: List[CopyFaultWindow]):
        def hook(bus: Bus, nbytes: int) -> Optional[float]:
            now = self._sim.now
            for window in windows:
                if window.start_ms <= now < window.end_ms:
                    if self._rng.random() < window.probability:
                        # Second draw: how far into the transfer the fault
                        # hits. Both draws happen only inside a window.
                        fraction = self._rng.random()
                        self.stats.copy_faults += 1
                        self._record(
                            "fault.copy", bus=bus.name, bytes=nbytes, fraction=fraction
                        )
                        return fraction
                    return None
            return None

        return hook

    def _active_transport_window(
        self, windows: List[TransportFaultWindow]
    ) -> Optional[TransportFaultWindow]:
        now = self._sim.now
        for window in windows:
            if window.start_ms <= now < window.end_ms:
                return window
        return None

    # -- scheduled actions ----------------------------------------------------
    def _do_set_load(self, bus: Bus, load: float) -> None:
        bus.set_load(load)
        self.stats.load_changes += 1
        self._record("fault.bus_load", bus=bus.name, load=load)

    def _do_stall(self, device: PhysicalDevice, duration_ms: float) -> None:
        device.inject_stall(duration_ms)
        self.stats.stalls += 1
        self._record("fault.device_stall", device=device.name, duration=duration_ms)

    def _do_reset(self, device: PhysicalDevice, downtime_ms: float) -> None:
        device.inject_reset(downtime_ms)
        self.stats.resets += 1
        self._record("fault.device_reset", device=device.name, downtime=downtime_ms)

    def _do_crash(self, crash: Any) -> None:
        self.stats.crashes += 1
        self._record("fault.device_crash", vdev=crash.vdev, downtime=crash.downtime_ms)
        self.coordinator.crash(crash.vdev, crash.downtime_ms)

    # -- helpers ---------------------------------------------------------------
    def _delay_until(self, time_ms: float) -> float:
        return max(0.0, time_ms - self._sim.now)

    def _record(self, kind: str, **fields: Any) -> None:
        if self.trace is not None:
            self.trace.record(self._sim.now, kind, **fields)
