"""Units and conversion helpers used throughout the reproduction.

The simulation time base is the **millisecond**, stored as a ``float``.
Every quantity in the vSoC paper is quoted in milliseconds (slack intervals,
coherence cost, access latency, frame deadlines), so using ms as the base
unit keeps model parameters and reported numbers directly comparable to the
paper without mental conversion.

Sizes are plain byte counts (``int``). Bandwidths are stored in
bytes-per-millisecond internally; the :func:`gb_per_s` helper converts the
familiar GB/s figure used in datasheets and in Table 2 of the paper.
"""

from __future__ import annotations

# --- time ---------------------------------------------------------------
#: One microsecond, in simulation time units (milliseconds).
US = 1e-3
#: One millisecond — the simulation base unit.
MS = 1.0
#: One second.
SECOND = 1000.0
#: One minute.
MINUTE = 60 * SECOND

# --- sizes --------------------------------------------------------------
KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB

#: Size of one memory page, the paper's fence-table budget (§4).
PAGE_SIZE = 4 * KIB

# --- paper-defined buffer sizes (§2.3, Figure 4) --------------------------
#: Full-HD+ display buffer: 2400 x 1080 x 4 bytes = 9.9 MiB.
DISPLAY_BUFFER_BYTES = 2400 * 1080 * 4
#: UHD video frame in a packed YUV format: 3840 x 2160 x 2 bytes = 15.8 MiB.
UHD_FRAME_BYTES = 3840 * 2160 * 2
#: UHD display buffer used in the §5 evaluation (3840x2160 RGBA).
UHD_DISPLAY_BUFFER_BYTES = 3840 * 2160 * 4

# --- frame timing ---------------------------------------------------------
#: Target frame rate of every workload in the paper's evaluation.
TARGET_FPS = 60
#: Frame period at 60 FPS: the 16.7 ms budget quoted in §2.4.
VSYNC_PERIOD_MS = SECOND / TARGET_FPS


def gb_per_s(gigabytes_per_second: float) -> float:
    """Convert a GB/s bandwidth figure into bytes per millisecond.

    >>> round(gb_per_s(1.0))
    1000000
    """
    return gigabytes_per_second * 1e9 / SECOND


def to_gb_per_s(bytes_per_ms: float) -> float:
    """Convert internal bytes/ms back into GB/s for reporting."""
    return bytes_per_ms * SECOND / 1e9


def mib(n: float) -> int:
    """``n`` mebibytes, in bytes."""
    return int(n * MIB)


def transfer_time_ms(nbytes: int, bandwidth_bytes_per_ms: float) -> float:
    """Pure transfer time for ``nbytes`` over a link, excluding latency."""
    if bandwidth_bytes_per_ms <= 0:
        raise ValueError("bandwidth must be positive")
    return nbytes / bandwidth_bytes_per_ms
