"""Google Android Emulator (GAE) model.

Architecture per §2.2: modular virtual devices, SVM coherence through
guest memory (two boundary crossings per maintenance), atomic ordering for
shared-resource operations.

Calibration (sources: §2.3 measurement + Table 2 + §5.3 observations):

* **video decode on the CPU** — §5.3 attributes GAE's laptop collapse to
  CPU thermal throttling of its video decoder, so the codec maps to
  software decode;
* ``extra_access_overhead_ms = 0.52`` — lifts average access latency to
  ≈0.76 ms (Table 2) over the 0.22 ms page-map floor;
* boundary bandwidth scale 1.0 — GAE *defines* the machine's calibrated
  boundary figure (7.05 ms per UHD-frame maintenance);
* mild render scale (its GPU translation layer is decent but not
  Trinity-class).
"""

from __future__ import annotations

import random
from typing import Optional

from repro.core.ordering import OrderingMode
from repro.emulators.base import Emulator, EmulatorConfig
from repro.hw.machine import HostMachine
from repro.sim import Simulator
from repro.sim.tracing import TraceLog


def gae_config() -> EmulatorConfig:
    """Google Android Emulator configuration (calibration in module docstring)."""
    return EmulatorConfig(
        name="GAE",
        unified_svm=False,
        prefetch_enabled=False,
        ordering=OrderingMode.ATOMIC,
        hw_decode=False,  # software decoder (the §5.3 thermal story)
        hw_encode=False,
        has_camera=True,
        isp_on_gpu=True,  # GAE's YUVConverter is the in-GPU path vSoC reuses
        render_scale=1.15,
        decode_scale=1.0,
        extra_access_overhead_ms=0.52,
        coherence_bandwidth_scale=1.0,
    )


def make_gae(
    sim: Simulator,
    machine: HostMachine,
    trace: Optional[TraceLog] = None,
    rng: Optional[random.Random] = None,
    obs=None,
) -> Emulator:
    """Build a Google Android Emulator model instance."""
    return Emulator(sim, machine, gae_config(), trace=trace, rng=rng, obs=obs)
