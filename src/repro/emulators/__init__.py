"""Emulator assemblies: vSoC and the five comparison emulators of §5.1.

Every emulator is an :class:`~repro.emulators.base.Emulator` configured
with a memory architecture (unified vs guest-memory), a coherence protocol,
an ordering mechanism, a virtual→physical device mapping policy, and
per-implementation efficiency factors. The factory functions return ready
instances bound to a simulator and host machine.
"""

from repro.emulators.base import Emulator, EmulatorConfig, StageResult, VDEV_NAMES
from repro.emulators.commercial import make_bluestacks, make_ldplayer
from repro.emulators.gae import make_gae
from repro.emulators.qemu_kvm import make_qemu_kvm
from repro.emulators.trinity import make_trinity
from repro.emulators.vsoc import make_vsoc

#: The evaluation's emulator lineup, by report name.
EMULATOR_FACTORIES = {
    "vSoC": make_vsoc,
    "GAE": make_gae,
    "QEMU-KVM": make_qemu_kvm,
    "LDPlayer": make_ldplayer,
    "Bluestacks": make_bluestacks,
    "Trinity": make_trinity,
}

__all__ = [
    "Emulator",
    "EmulatorConfig",
    "StageResult",
    "VDEV_NAMES",
    "make_vsoc",
    "make_gae",
    "make_qemu_kvm",
    "make_ldplayer",
    "make_bluestacks",
    "make_trinity",
    "EMULATOR_FACTORIES",
]
