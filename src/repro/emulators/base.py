"""The emulator assembly: guest drivers, host executors, and the SVM stack.

An :class:`Emulator` wires the paper's moving parts together:

* one **guest driver + host command queue + host executor** per virtual
  device (codec, GPU, display, camera, ISP, modem) — the asynchronous
  threading paradigm of §3.4;
* an **SVM manager** with the emulator's coherence protocol over the
  machine's copy topology;
* the **virtual fence table** and per-device **physical fence tables**
  (FENCES ordering), or blocking **atomic** dispatch (the baseline and the
  §5.4 ablation);
* per-device **MIMD flow control** pacing guest dispatch.

Apps talk to the emulator through *stages*: one stage = (optional SVM
accesses) + one device op, e.g. "codec decodes a frame into region 7" or
"GPU renders reading region 7, writing framebuffer region 9". Stages return
a :class:`StageResult` whose ``done`` event fires at host retirement, which
is how apps observe true frame-presentation times.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional, Sequence

from repro.core.coherence import (
    CoherenceProtocol,
    CopyPlanner,
    GuestMemoryWriteInvalidate,
    UnifiedPrefetchProtocol,
    UnifiedWriteInvalidate,
)
from repro.core.degradation import DegradationController
from repro.core.fence import VirtualFenceTable
from repro.core.flowcontrol import MimdFlowControl
from repro.core.manager import SvmManager
from repro.core.ordering import (
    Command,
    ExecCommand,
    OrderingMode,
    SignalFenceCommand,
    WaitFenceCommand,
)
from repro.core.prefetch import PrefetchEngine
from repro.core.region import (
    GUEST_LOCATION,
    HOST_LOCATION,
    AccessUsage,
    location_of,
)
from repro.core.twin import TwinHypergraphs
from repro.errors import CapabilityError, ConfigurationError
from repro.hw.bus import Bus
from repro.hw.machine import HostMachine
from repro.hw.device import DeviceKind, PhysicalDevice
from repro.obs import DISABLED, Observability
from repro.obs.span import NO_FLOW
from repro.sim import FifoQueue, SimEvent, Simulator, Timeout
from repro.sim.tracing import TraceLog
from repro.units import gb_per_s

#: The common set of paravirtualized virtual SoC devices (§3.1).
VDEV_NAMES = ("gpu", "display", "codec", "camera", "isp", "modem", "cpu")


@dataclass
class EmulatorConfig:
    """Everything that differentiates one emulator from another.

    The efficiency scales are the only per-emulator fitted constants; each
    concrete emulator module documents where its values come from.
    """

    name: str
    # memory architecture + protocols
    unified_svm: bool  # True: vSoC's framework; False: guest-memory (§2.2)
    prefetch_enabled: bool = False  # only meaningful with unified_svm
    broadcast_coherence: bool = False  # §7's broadcast baseline (research)
    ordering: OrderingMode = OrderingMode.ATOMIC
    # §5.4: the write-invalidate ablation needs synchronous guest-host
    # execution for SVM operations, "thus virtual command fences cannot be
    # used" — stages that touch SVM regions become atomic even when the
    # ordering mode is FENCES.
    atomic_svm_stages: bool = False
    # device capabilities / virtual→physical mapping policy
    hw_decode: bool = True  # codec maps onto the GPU's decode engine
    hw_encode: bool = True
    can_encode: bool = True  # False: no video encoder at all (Trinity)
    has_camera: bool = True
    isp_on_gpu: bool = True
    # efficiency factors (>1 = slower than the reference implementation)
    render_scale: float = 1.0
    decode_scale: float = 1.0
    encode_scale: float = 1.0
    convert_scale: float = 1.0
    # SVM interface costs
    page_map_scale: float = 1.0
    extra_access_overhead_ms: float = 0.0
    coherence_bandwidth_scale: float = 1.0  # scales the boundary bus
    dispatch_cost_ms: float = 0.03
    command_queue_depth: int = 64
    # Atomic ordering serializes the guest-host round trip of every
    # command inside a render pass (draw calls, state changes) instead of
    # letting them stream past fences — Figure 9b's head-of-queue
    # blocking, amortized here as a per-render-stage penalty.
    atomic_render_penalty_ms: float = 1.5
    # §3.4: "the mechanism is also applied in GPU context switches to
    # avoid GPU driver stalls". Switching the physical GPU between
    # virtual-device contexts (codec engine ↔ render ↔ compose) costs a
    # stall under atomic ordering; with fences the switch is deferred and
    # pipelined (costs nothing extra).
    gpu_context_switch_ms: float = 0.45
    # periodic whole-emulator stalls (closed-source emulators, §5.3)
    stall_period_ms: float = 0.0  # 0 disables
    stall_duration_ms: float = 0.0
    # misc
    flow_control_window: float = 8.0
    extra: Dict[str, float] = field(default_factory=dict)


@dataclass
class StageResult:
    """What a guest-side stage returns to the app."""

    access_latency: float  # total begin_access blocking (ms)
    dispatch_latency: float  # driver-side time, incl. compensation (ms)
    done: SimEvent  # fires at host retirement of the stage's op
    compensation: float = 0.0


class _VirtualDevice:
    """One virtual device: its command queue and physical binding."""

    __slots__ = ("name", "physical", "queue", "flow", "executor", "outstanding", "crashes")

    def __init__(
        self,
        name: str,
        physical: PhysicalDevice,
        queue: FifoQueue,
        flow: MimdFlowControl,
    ):
        self.name = name
        self.physical = physical
        self.queue = queue
        self.flow = flow
        self.executor = None
        # Every dispatched-but-not-retired ExecCommand, in dispatch order
        # (dict-as-ordered-set). Crash recovery aborts exactly this set —
        # commands may sit in the queue, in a fired-but-undelivered get
        # event, or on the executor's bench; this ledger sees them all.
        self.outstanding: Dict[ExecCommand, None] = {}
        self.crashes = 0


class Emulator:
    """A mobile emulator instance bound to one simulator and host machine."""

    def __init__(
        self,
        sim: Simulator,
        machine: HostMachine,
        config: EmulatorConfig,
        trace: Optional[TraceLog] = None,
        rng: Optional[random.Random] = None,
        obs: Optional[Observability] = None,
    ):
        self.sim = sim
        self.machine = machine
        self.config = config
        self.trace = trace if trace is not None else TraceLog()
        self.rng = rng if rng is not None else random.Random(0)
        self.obs = obs if obs is not None else DISABLED

        # The boundary bus is per-emulator: its effective bandwidth differs
        # between implementations (Table 2 coherence-cost spread).
        spec = machine.spec
        self._boundary = Bus(
            sim,
            f"{config.name}:boundary",
            gb_per_s(spec.boundary_copy_gbps * config.coherence_bandwidth_scale),
            latency=spec.vm_exit_cost_ms,
        )
        self.planner = CopyPlanner(sim, machine, boundary=self._boundary, trace=self.trace)

        locations = set(self.planner.known_locations()) | {GUEST_LOCATION}
        self.twin = TwinHypergraphs(VDEV_NAMES, locations)

        self.engine: Optional[PrefetchEngine] = None
        self.degradation: Optional[DegradationController] = None
        self.protocol = self._build_protocol()

        location_pools = {HOST_LOCATION: machine.host_memory, GUEST_LOCATION: machine.guest_memory}
        for device in machine.devices.values():
            if device.local_memory is not None:
                location_pools[device.name] = device.local_memory
        self.manager = SvmManager(
            sim,
            self.twin,
            self.protocol,
            location_pools,
            self.trace,
            page_map_cost=spec.page_map_cost_ms * config.page_map_scale,
            extra_access_overhead=config.extra_access_overhead_ms,
            engine=self.engine,
            degradation=self.degradation,
            obs=self.obs,
        )

        from repro.guest.transport import VirtioTransport  # local: avoids cycle

        self.transport = VirtioTransport(
            sim, kick_cost=config.dispatch_cost_ms, obs=self.obs
        )
        self.fence_table = VirtualFenceTable(sim)
        self._vdevs: Dict[str, _VirtualDevice] = {}
        self._vdev_location_overrides: Dict[str, str] = {}
        for vdev_name in VDEV_NAMES:
            physical = self._resolve_physical(vdev_name)
            if physical is None:
                continue
            vdev = _VirtualDevice(
                vdev_name,
                physical,
                FifoQueue(sim, capacity=config.command_queue_depth, name=f"q:{vdev_name}"),
                MimdFlowControl(sim, initial_window=config.flow_control_window),
            )
            vdev.executor = sim.spawn(self._executor(vdev), name=f"exec:{vdev_name}")
            self._vdevs[vdev_name] = vdev

        self._stall_gate: Optional[SimEvent] = None
        self._last_codec_stage = float("-inf")
        self._gpu_context: Dict[str, str] = {}
        if config.stall_period_ms > 0:
            sim.spawn(self._stall_injector(), name=f"{config.name}:stalls")

        if self.obs.enabled:
            registry = self.obs.registry
            self._boundary.attach_metrics(registry)
            machine.memctl.attach_metrics(registry)
            machine.pcie.attach_metrics(registry)
            self.obs.map_devices(
                {name: vdev.physical.name for name, vdev in self._vdevs.items()}
            )

    # -- construction helpers -----------------------------------------------
    def _build_protocol(self) -> CoherenceProtocol:
        if not self.config.unified_svm:
            if self.config.prefetch_enabled or self.config.broadcast_coherence:
                raise ConfigurationError(
                    "prefetch/broadcast require the unified SVM framework"
                )
            return GuestMemoryWriteInvalidate(
                self.sim, self.planner, self.trace, obs=self.obs
            )
        if self.config.broadcast_coherence:
            from repro.core.coherence import UnifiedBroadcast

            return UnifiedBroadcast(self.sim, self.planner, self.trace, obs=self.obs)
        if self.config.prefetch_enabled:
            self.degradation = DegradationController(self.sim, trace=self.trace)
            self.engine = PrefetchEngine(
                self.sim, self.twin, self.planner, self.vdev_location, self.trace,
                degradation=self.degradation, obs=self.obs,
            )
            return UnifiedPrefetchProtocol(
                self.sim, self.planner, self.engine, self.trace,
                degradation=self.degradation, obs=self.obs,
            )
        return UnifiedWriteInvalidate(self.sim, self.planner, self.trace, obs=self.obs)

    def _resolve_physical(self, vdev: str) -> Optional[PhysicalDevice]:
        """The dynamic virtual→physical mapping of §3.2."""
        machine = self.machine
        if vdev in ("gpu", "display"):
            return machine.gpu  # displays are managed by the GPU on PCs
        if vdev == "codec":
            return machine.gpu if self.config.hw_decode else machine.cpu
        if vdev == "isp":
            return machine.gpu if self.config.isp_on_gpu else machine.cpu
        if vdev == "camera":
            return machine.camera if self.config.has_camera else None
        if vdev == "modem":
            return machine.nic
        if vdev == "cpu":
            return machine.cpu
        return None

    # -- porting new virtual devices (§6) ------------------------------------
    def register_vdev(self, name: str, physical: PhysicalDevice,
                      data_location: Optional[str] = None) -> None:
        """Port a new virtual device into the SVM framework (§6).

        Following the paper's porting recipe, the new device gets: a handle
        representation (the shared SVM manager), a node in both hypergraph
        layers (so its flows are predicted and prefetched), fence/ordering
        support (its own command queue + executor), and copy paths (via its
        physical device's location). ``data_location`` overrides where its
        SVM data lives (e.g. ``"host"`` for devices with host-resident
        output buffers, like the codec).
        """
        if name in self._vdevs:
            raise ConfigurationError(f"virtual device {name!r} already exists")
        self.twin.virtual.add_node(name)
        location = data_location if data_location is not None else location_of(physical)
        self.twin.physical.add_node(location)
        self._vdev_location_overrides[name] = location
        vdev = _VirtualDevice(
            name,
            physical,
            FifoQueue(self.sim, capacity=self.config.command_queue_depth, name=f"q:{name}"),
            MimdFlowControl(self.sim, initial_window=self.config.flow_control_window),
        )
        vdev.executor = self.sim.spawn(self._executor(vdev), name=f"exec:{name}")
        self._vdevs[name] = vdev

    # -- crash recovery hooks (repro.recovery) --------------------------------
    def respawn_executor(self, vdev_name: str) -> None:
        """Re-admit a crashed virtual device with a fresh host executor.

        The old executor process must already be dead (killed by the
        recovery coordinator). Any GPU context the crashed device held is
        forgotten so the next tenant pays an honest rebind.
        """
        vdev = self._vdev(vdev_name)
        if vdev.executor is not None and vdev.executor.alive:
            raise ConfigurationError(
                f"executor for {vdev_name!r} is still alive; kill it first"
            )
        physical = vdev.physical
        if self._gpu_context.get(physical.name) == vdev_name:
            del self._gpu_context[physical.name]
        vdev.executor = self.sim.spawn(self._executor(vdev), name=f"exec:{vdev_name}")

    # -- introspection -------------------------------------------------------
    @property
    def name(self) -> str:
        """Report name of this emulator configuration."""
        return self.config.name

    def has_vdev(self, vdev: str) -> bool:
        """True when this emulator implements the named virtual device."""
        return vdev in self._vdevs

    def vdev_names(self) -> List[str]:
        """Names of the virtual devices this emulator implements."""
        return list(self._vdevs)

    def physical_for(self, vdev: str) -> PhysicalDevice:
        try:
            return self._vdevs[vdev].physical
        except KeyError:
            raise CapabilityError(
                f"emulator {self.config.name!r} has no virtual device {vdev!r}"
            ) from None

    def vdev_location(self, vdev: str) -> str:
        """Where this virtual device's SVM data lives.

        The codec is special: even with hardware (NVDEC-class) decode, the
        libavcodec output buffers land in **host memory** — in-GPU
        rendering needs the OpenGL interop path, which only covers some
        formats (§4). This is exactly why video pipelines have a per-frame
        host→GPU coherence maintenance (the 2.38 ms of Table 2) instead of
        being free.
        """
        override = self._vdev_location_overrides.get(vdev)
        if override is not None:
            return override
        if vdev == "codec":
            return HOST_LOCATION
        return location_of(self.physical_for(vdev))

    def supports_encoding(self) -> bool:
        """Livestream/camera recording capability (Trinity lacks it)."""
        if not self.config.can_encode:
            return False
        return self.config.hw_encode or self.physical_for("codec").supports("sw_encode")

    def track_groups(self) -> Dict[str, str]:
        """Trace-track → physical-device grouping for the Perfetto exporter.

        Guest-side virtual-device tracks and their host executors group
        under the physical device that serves them ("pid" in the Chrome
        trace); transport/coherence/prefetch machinery stays on the host.
        """
        groups: Dict[str, str] = {}
        for name, vdev in self._vdevs.items():
            groups[name] = vdev.physical.name
            groups[f"{name}/exec"] = vdev.physical.name
        return groups

    # -- SVM lifecycle (guest-facing) -----------------------------------------
    def svm_alloc(self, size: int) -> int:
        """Allocate a shared-memory region; returns its 64-bit handle."""
        return self.manager.alloc(size)

    def svm_free(self, region_id: int) -> None:
        """Free a shared-memory region by handle."""
        self.manager.free(region_id)

    # -- stages (guest-facing) ---------------------------------------------------
    def stage(
        self,
        vdev: str,
        op: str,
        op_bytes: int,
        reads: Sequence[int] = (),
        writes: Sequence[int] = (),
        dirty_bytes: Optional[int] = None,
        flow: int = NO_FLOW,
    ) -> Generator[Any, Any, StageResult]:
        """Process: run one pipeline stage on a virtual device.

        Opens SVM access brackets (coherence happens here per the
        protocol), dispatches the device op with ordering semantics, applies
        prefetch compensation, and closes the brackets. Returns a
        :class:`StageResult`; ``yield result.done`` to join host retirement.

        ``flow`` is the causal-trace flow id of the frame this stage
        advances; it is stamped onto the touched regions so downstream
        coherence/prefetch spans join the frame's flow.
        """
        device = self._vdev(vdev)
        location = self.vdev_location(vdev)
        start = self.sim.now

        read_regions = [self.manager.get(r) for r in reads]
        write_regions = [self.manager.get(r) for r in writes]
        if flow != NO_FLOW:
            for region in (*read_regions, *write_regions):
                region.flow = flow
        stage_span = self.obs.tracer.begin(
            f"stage:{op}", vdev, cat="stage", flow=flow,
            op=op, reads=len(read_regions), writes=len(write_regions),
        )

        access_latency = 0.0
        for region in read_regions:
            usage = AccessUsage.READ_WRITE if region in write_regions else AccessUsage.READ
            access_latency += yield from self.manager.begin_access(
                vdev, region.region_id, usage, location,
                nbytes=dirty_bytes if usage.writes else None,
            )
        for region in write_regions:
            if region in read_regions:
                continue  # already opened RW above
            access_latency += yield from self.manager.begin_access(
                vdev, region.region_id, AccessUsage.WRITE, location, nbytes=dirty_bytes
            )

        if vdev == "codec":
            self._last_codec_stage = self.sim.now
        if (
            self._stall_gate is not None
            and not self._stall_gate.fired
            and self.sim.now - self._last_codec_stage < 1_000.0
        ):
            # Decoder-overload freeze (§5.3: "videos often freeze for
            # seconds on Bluestacks and LDPlayer"; lower resolutions play
            # smoothly — the stall follows decode pressure, so apps that
            # never touch the codec are unaffected).
            yield self._stall_gate

        yield device.flow.dispatch()
        dispatch_start = self.sim.now

        commands: List[Command] = []
        if self.config.ordering is OrderingMode.FENCES:
            for region in read_regions:
                if region.write_fence is not None and not region.write_fence.signaled:
                    commands.append(WaitFenceCommand(region.write_fence, flow=flow))
        cmd = ExecCommand(
            self.sim,
            op,
            op_bytes,
            reads=read_regions,
            writes=write_regions,
            scale=self._op_scale(op),
            dirty_bytes=dirty_bytes or 0,
            dispatched_at=self.sim.now,
            flow=flow,
        )
        commands.append(cmd)
        device.outstanding[cmd] = None
        if self.config.ordering is OrderingMode.FENCES and write_regions:
            fence = self.fence_table.allocate()
            fence.owner = vdev
            for region in write_regions:
                region.write_fence = fence
                region.pending_writer_location = location
            commands.append(SignalFenceCommand(fence, flow=flow))

        yield from self.transport.kick_reliable(len(commands), flow=flow)
        for command in commands:
            yield device.queue.put(command)

        atomic = self.config.ordering is OrderingMode.ATOMIC or (
            self.config.atomic_svm_stages and (read_regions or write_regions)
        )
        compensation = 0.0
        if atomic:
            yield cmd.done
            if op == "render" and self.config.atomic_render_penalty_ms > 0:
                yield Timeout(self.config.atomic_render_penalty_ms)
        elif write_regions and self.engine is not None:  # noqa: SIM114
            # Adaptive synchronism (§3.3): block only when predicted slack
            # cannot hide the predicted prefetch.
            compensation = max(
                (
                    self.engine.predicted_compensation(region, vdev, location)
                    for region in write_regions
                ),
                default=0.0,
            )
            for region in write_regions:
                region.applied_compensation = compensation
            if compensation > 0:
                yield cmd.done
                yield Timeout(compensation)
                self.trace.record(
                    self.sim.now,
                    "svm.compensation",
                    vdev=vdev,
                    compensation=compensation,
                )

        for region in (*read_regions, *write_regions):
            if region.open_accessors and vdev in region.open_accessors:
                self.manager.end_access(vdev, region.region_id)

        self.obs.tracer.end(
            stage_span,
            access_latency=access_latency,
            compensation=compensation,
        )
        return StageResult(
            access_latency=access_latency,
            dispatch_latency=self.sim.now - dispatch_start,
            done=cmd.done,
            compensation=compensation,
        )

    def compute(self, vdev: str, op: str, op_bytes: int = 0) -> Generator[Any, Any, StageResult]:
        """Process: a pure device op with no SVM regions (e.g. 3D game render)."""
        return (yield from self.stage(vdev, op, op_bytes))

    # -- convenience stage wrappers used by app pipelines ------------------------
    def decode_op(self) -> str:
        """The decode op this emulator's codec path uses (hw vs software)."""
        return "hw_decode" if self.config.hw_decode else "sw_decode"

    def encode_op(self) -> str:
        if not self.supports_encoding():
            raise CapabilityError(f"{self.config.name} cannot encode video")
        return "hw_encode" if self.config.hw_encode else "sw_encode"

    def convert_op(self) -> str:
        """The colorspace-conversion op (in-GPU YUVConverter vs libswscale)."""
        return "convert" if self.config.isp_on_gpu else "sw_convert"

    # -- host executor ----------------------------------------------------------
    def _executor(self, vdev: _VirtualDevice):
        """Host-side thread of one virtual device: drain its command queue."""
        manager = self.manager
        tracer = self.obs.tracer
        location = self.vdev_location(vdev.name)
        exec_track = f"{vdev.name}/exec"
        while True:
            command = yield vdev.queue.get()
            if isinstance(command, ExecCommand) and command.done.fired:
                # Aborted by crash recovery while still travelling through
                # the (since reset) queue — its completion was already
                # accounted; executing it would double-fire ``done``.
                continue
            if isinstance(command, WaitFenceCommand):
                span = tracer.begin(
                    "fence.wait", exec_track, cat="fence", flow=command.flow
                )
                yield command.fence.wait()
                tracer.end(span)
            elif isinstance(command, SignalFenceCommand):
                command.fence.signal()
                tracer.instant(
                    "fence.signal", exec_track, cat="fence", flow=command.flow
                )
            elif isinstance(command, ExecCommand):
                span = tracer.begin(
                    f"exec:{command.op}", exec_track, cat="exec",
                    flow=command.flow, op=command.op, bytes=command.nbytes,
                )
                for region in command.reads:
                    yield from manager.host_before_read(
                        region.region_id, vdev.name, location
                    )
                yield from self._context_switch(vdev)
                yield from vdev.physical.run_op(
                    command.op, command.nbytes, scale=command.scale
                )
                for region in command.writes:
                    yield from manager.host_write_retired(
                        region.region_id, vdev.name, location, command.dirty_window(region)
                    )
                command.done.fire(self.sim.now)
                vdev.flow.complete()
                vdev.outstanding.pop(command, None)
                tracer.end(span, queue_delay=self.sim.now - command.dispatched_at)
                if self.trace.wants("host.op_retired"):
                    self.trace.record(
                        self.sim.now,
                        "host.op_retired",
                        vdev=vdev.name,
                        op=command.op,
                        queue_delay=self.sim.now - command.dispatched_at,
                    )
            else:  # pragma: no cover - defensive
                raise ConfigurationError(f"unknown command {command!r}")

    def _context_switch(self, vdev: _VirtualDevice):
        """GPU context-switch stall (§3.4) — deferred for free under fences.

        The physical GPU serves several virtual devices (codec engine,
        render, compose); each hand-over re-binds its context. With the
        fence mechanism the switch rides the asynchronous command stream;
        under atomic ordering the driver stalls for it.
        """
        physical = vdev.physical
        if physical.kind is not DeviceKind.GPU:
            return
        previous = self._gpu_context.get(physical.name)
        self._gpu_context[physical.name] = vdev.name
        if previous is None or previous == vdev.name:
            return
        if self.config.ordering is OrderingMode.FENCES and not self.config.atomic_svm_stages:
            return  # deferred: the switch overlaps queued work
        cost = self.config.gpu_context_switch_ms
        if cost > 0:
            yield Timeout(cost)

    def _op_scale(self, op: str) -> float:
        config = self.config
        if op in ("render", "compose", "present"):
            return config.render_scale
        if op in ("hw_decode", "sw_decode"):
            return config.decode_scale
        if op in ("hw_encode", "sw_encode"):
            return config.encode_scale
        if op in ("convert", "sw_convert"):
            return config.convert_scale
        return 1.0

    def _vdev(self, name: str) -> _VirtualDevice:
        try:
            return self._vdevs[name]
        except KeyError:
            raise CapabilityError(
                f"emulator {self.config.name!r} has no virtual device {name!r}"
            ) from None

    # -- stall injection (closed-source emulator quirk) ---------------------------
    def _stall_injector(self):
        """Periodically freeze dispatch for stall_duration_ms (±30% jitter)."""
        config = self.config
        while True:
            period = config.stall_period_ms * self.rng.uniform(0.7, 1.3)
            yield Timeout(period)
            gate = SimEvent(self.sim, name=f"{config.name}:stall")
            self._stall_gate = gate
            yield Timeout(config.stall_duration_ms * self.rng.uniform(0.7, 1.3))
            self._stall_gate = None
            gate.fire(None)
