"""vSoC: the paper's emulator (§3, §4).

Unified SVM framework, prefetch coherence protocol, virtual command
fences, MIMD flow control. Hardware decode/encode run on the GPU's codec
engines (libavcodec + interop in the real system), ISP conversion runs
in-GPU (the YUVConverter path), and the virtual display is a GPU-managed
host window.

The two §5.4 ablation switches are exposed directly:

* ``prefetch=False`` swaps in the classic write-invalidate protocol over
  the same unified copy paths (Figure 12 / Figure 16);
* ``fences=False`` falls back to atomic shared-resource operations
  (Figure 12's fence ablation).
"""

from __future__ import annotations

import random
from typing import Optional

from repro.core.ordering import OrderingMode
from repro.emulators.base import Emulator, EmulatorConfig
from repro.hw.machine import HostMachine
from repro.sim import Simulator
from repro.sim.tracing import TraceLog


def vsoc_config(prefetch: bool = True, fences: bool = True) -> EmulatorConfig:
    """vSoC's configuration; all efficiency scales are 1.0 (the reference).

    With ``prefetch=False``, SVM-touching stages additionally become
    atomic: §5.4 — "coherence maintenance needs synchronous guest-host
    execution, and thus virtual command fences cannot be used (other
    usages of the fences are not touched)".
    """
    return EmulatorConfig(
        name="vSoC",
        unified_svm=True,
        prefetch_enabled=prefetch,
        ordering=OrderingMode.FENCES if fences else OrderingMode.ATOMIC,
        atomic_svm_stages=not prefetch,
        hw_decode=True,
        hw_encode=True,
        has_camera=True,
        isp_on_gpu=True,
    )


def make_vsoc(
    sim: Simulator,
    machine: HostMachine,
    trace: Optional[TraceLog] = None,
    rng: Optional[random.Random] = None,
    prefetch: bool = True,
    fences: bool = True,
    broadcast: bool = False,
    obs=None,
) -> Emulator:
    """Build a vSoC instance; ablation flags mirror §5.4.

    ``broadcast=True`` swaps in the §7-related-work broadcast protocol on
    the same unified framework — reads never block, but every write is
    pushed to every location (the bandwidth overhead the paper rejects).
    """
    config = vsoc_config(prefetch=prefetch and not broadcast, fences=fences)
    if broadcast:
        config.prefetch_enabled = False
        config.broadcast_coherence = True
        config.atomic_svm_stages = False
        config.name = "vSoC(broadcast)"
    elif not (prefetch and fences):
        suffix = []
        if not prefetch:
            suffix.append("no-prefetch")
        if not fences:
            suffix.append("no-fence")
        config.name = "vSoC(" + ",".join(suffix) + ")"
    return Emulator(sim, machine, config, trace=trace, rng=rng, obs=obs)
