"""LDPlayer and Bluestacks models.

Both are closed-source gaming-oriented emulators; the paper measures them
as black boxes. We encode the externally observable behaviour:

* guest-memory SVM with atomic ordering (modular architecture, as all
  non-vSoC emulators);
* software video decode with additional per-frame overheads (both perform
  far below GAE on UHD video despite comparable hardware access);
* periodic whole-emulator stalls — §5.3: "videos often freeze for seconds
  on Bluestacks and LDPlayer", at lower resolutions they run smoothly,
  i.e. the problem is throughput, not functionality. Bluestacks stalls
  longer and more often (it ranks last among the four baselines that can
  run all categories).

These stall/scale parameters are fitted to land the Figure 10 FPS ordering
(GAE > QEMU-KVM > LDPlayer > Bluestacks on emerging apps) at roughly the
paper's average factors (vSoC is ~2.9x LDPlayer and ~7.6x Bluestacks).
"""

from __future__ import annotations

import random
from typing import Optional

from repro.core.ordering import OrderingMode
from repro.emulators.base import Emulator, EmulatorConfig
from repro.hw.machine import HostMachine
from repro.sim import Simulator
from repro.sim.tracing import TraceLog


def ldplayer_config() -> EmulatorConfig:
    """LDPlayer configuration (fitted parameters; see module docstring)."""
    return EmulatorConfig(
        name="LDPlayer",
        unified_svm=False,
        prefetch_enabled=False,
        ordering=OrderingMode.ATOMIC,
        hw_decode=False,
        hw_encode=False,
        has_camera=True,
        isp_on_gpu=False,
        render_scale=1.25,
        decode_scale=2.0,
        extra_access_overhead_ms=0.45,
        coherence_bandwidth_scale=0.85,  # slower boundary than GAE's
        stall_period_ms=4_000.0,
        stall_duration_ms=320.0,
    )


def bluestacks_config() -> EmulatorConfig:
    """Bluestacks configuration (fitted parameters; see module docstring)."""
    return EmulatorConfig(
        name="Bluestacks",
        unified_svm=False,
        prefetch_enabled=False,
        ordering=OrderingMode.ATOMIC,
        hw_decode=False,
        hw_encode=False,
        has_camera=True,
        isp_on_gpu=False,
        render_scale=1.35,
        decode_scale=2.2,
        extra_access_overhead_ms=0.5,
        coherence_bandwidth_scale=0.8,
        stall_period_ms=5_000.0,
        stall_duration_ms=2_500.0,  # the "freeze for seconds" behaviour
    )


def make_ldplayer(
    sim: Simulator,
    machine: HostMachine,
    trace: Optional[TraceLog] = None,
    rng: Optional[random.Random] = None,
    obs=None,
) -> Emulator:
    """Build an LDPlayer model instance."""
    return Emulator(sim, machine, ldplayer_config(), trace=trace, rng=rng, obs=obs)


def make_bluestacks(
    sim: Simulator,
    machine: HostMachine,
    trace: Optional[TraceLog] = None,
    rng: Optional[random.Random] = None,
    obs=None,
) -> Emulator:
    """Build a Bluestacks model instance."""
    return Emulator(sim, machine, bluestacks_config(), trace=trace, rng=rng, obs=obs)
