"""QEMU-KVM model.

Plain QEMU with KVM acceleration: software codec and ISP, a paravirtual
GPU (virgl-style) that renders markedly slower than a native stack, and
guest-memory SVM.

Calibration (Table 2 + §5.3):

* access latency is the page-map floor (0.22 ms — lowest of the three,
  "since its SVM is based on guest memory and only involves page mapping
  costs");
* coherence is *faster* than GAE's (6.15 vs 7.05 ms): its virtio path is
  leaner, hence ``coherence_bandwidth_scale = 7.05/6.15 ≈ 1.146``;
* ``render_scale = 2.2`` — the virgl translation overhead that keeps its
  app FPS well below GAE's despite cheaper coherence.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.core.ordering import OrderingMode
from repro.emulators.base import Emulator, EmulatorConfig
from repro.hw.machine import HostMachine
from repro.sim import Simulator
from repro.sim.tracing import TraceLog


def qemu_kvm_config() -> EmulatorConfig:
    """QEMU-KVM configuration (calibration in module docstring)."""
    return EmulatorConfig(
        name="QEMU-KVM",
        unified_svm=False,
        prefetch_enabled=False,
        ordering=OrderingMode.ATOMIC,
        hw_decode=False,
        hw_encode=False,
        has_camera=True,
        isp_on_gpu=False,  # libswscale on the CPU
        render_scale=2.2,
        decode_scale=1.45,
        extra_access_overhead_ms=0.0,
        coherence_bandwidth_scale=7.05 / 6.15,
    )


def make_qemu_kvm(
    sim: Simulator,
    machine: HostMachine,
    trace: Optional[TraceLog] = None,
    rng: Optional[random.Random] = None,
    obs=None,
) -> Emulator:
    """Build a QEMU-KVM model instance."""
    return Emulator(sim, machine, qemu_kvm_config(), trace=trace, rng=rng, obs=obs)
