"""Trinity (OSDI '22) model — the substrate vSoC is built upon.

Trinity minimizes GPU virtualization overhead through graphics projection,
so its render path is essentially native speed. Everything else is
inherited from Android-x86: a slow software codec, no camera, and no video
encoders (§5.3: "Trinity does not support cameras or video encoders"; its
UHD-video FPS is poor "because Trinity only has a software virtual codec
device inherited from Android-x86").

Calibration:

* ``render_scale = 0.95`` — marginally better than vSoC's GPU path on pure
  rendering (vSoC improves heavy-3D apps by only ~1%, §5.3);
* ``decode_scale = 2.0`` — the Android-x86 software decoder is roughly
  half the speed of a tuned libavcodec software path;
* guest-memory SVM with atomic ordering (modular architecture).
"""

from __future__ import annotations

import random
from typing import Optional

from repro.core.ordering import OrderingMode
from repro.emulators.base import Emulator, EmulatorConfig
from repro.hw.machine import HostMachine
from repro.sim import Simulator
from repro.sim.tracing import TraceLog


def trinity_config() -> EmulatorConfig:
    """Trinity configuration (calibration in module docstring)."""
    return EmulatorConfig(
        name="Trinity",
        unified_svm=False,
        prefetch_enabled=False,
        ordering=OrderingMode.ATOMIC,
        hw_decode=False,
        hw_encode=False,
        can_encode=False,
        has_camera=False,
        isp_on_gpu=True,
        render_scale=0.95,
        # The Android-x86 software codec: no threading tuning, mandatory
        # CPU colorspace conversion, extra copies — several times slower
        # than a tuned libavcodec software path.
        decode_scale=4.5,
        extra_access_overhead_ms=0.25,
        coherence_bandwidth_scale=1.0,
    )


def make_trinity(
    sim: Simulator,
    machine: HostMachine,
    trace: Optional[TraceLog] = None,
    rng: Optional[random.Random] = None,
    obs=None,
) -> Emulator:
    """Build a Trinity model instance."""
    return Emulator(sim, machine, trinity_config(), trace=trace, rng=rng, obs=obs)
