#!/usr/bin/env python3
"""Record once, replay everywhere: the §2.3 methodology as a tool.

Records the exact shared-memory access pattern a UHD video app produces on
vSoC, saves it to JSON, then replays that identical pattern (open loop)
against all three instrumentable emulators. With the workload held
constant, the remaining difference is purely the memory architecture's
coherence bill.

Run:  python examples/trace_replay.py
"""

import os
import tempfile

from repro.apps import UhdVideoApp
from repro.experiments.runner import run_app
from repro.workloads import WorkloadTrace, record_workload, replay_workload


def main() -> None:
    print("Recording: UHD video on vSoC, 8 simulated seconds ...")
    source = run_app(UhdVideoApp(), "vSoC", duration_ms=8_000.0)
    trace = record_workload(source.stats.trace, name="uhd-video-8s")
    print(f"  captured {len(trace.events)} events over {trace.regions} regions")

    path = os.path.join(tempfile.gettempdir(), "vsoc-uhd-trace.json")
    trace.dump(path)
    reloaded = WorkloadTrace.load(path)
    print(f"  saved + reloaded {path} ({os.path.getsize(path) // 1024} KiB)")

    print(f"\n{'Emulator':10s} {'maintenances':>13s} {'mean ms':>8s} "
          f"{'total ms':>9s} {'copied GiB':>11s}")
    print("-" * 58)
    for emulator in ("vSoC", "GAE", "QEMU-KVM"):
        result = replay_workload(reloaded, emulator)
        count = (result.total_coherence_ms / result.mean_coherence_ms
                 if result.mean_coherence_ms else 0)
        print(f"{emulator:10s} {count:13.0f} {result.mean_coherence_ms:8.2f} "
              f"{result.total_coherence_ms:9.1f} {result.bytes_copied / 2**30:11.2f}")

    print("\nSame accesses, different architectures: the guest-memory "
          "emulators pay ~3x per coherence maintenance (Table 2's ratio), "
          "with no app-side feedback muddying the comparison.")


if __name__ == "__main__":
    main()
