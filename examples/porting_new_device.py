#!/usr/bin/env python3
"""Porting a new virtual device into the SVM framework (§6).

The paper's porting recipe for a virtual device: provide a handle
representation of its memory, feed its SVM usage into the hypergraphs, add
prefetch/fence commands after accesses, and provide copy paths. With this
library, ``Emulator.register_vdev`` does all four — here we add a virtual
**NPU** (neural accelerator) that consumes camera frames, and watch the
prefetch engine learn its flow with zero changes to the core.

Run:  python examples/porting_new_device.py
"""

import random

from repro.emulators import make_vsoc
from repro.hw import HIGH_END_DESKTOP, build_machine
from repro.hw.device import DeviceKind, OpCost, PhysicalDevice
from repro.sim import Simulator, Timeout
from repro.units import UHD_FRAME_BYTES, gb_per_s


def main() -> None:
    sim = Simulator()
    machine = build_machine(sim, HIGH_END_DESKTOP)

    # 1. A physical NPU: its own local memory and PCIe link, one op.
    from repro.hw.memory import MemoryPool
    from repro.hw.bus import Bus

    npu_memory = MemoryPool("npu-mem", 4 << 30)
    npu_link = Bus(sim, "npu-pcie", gb_per_s(6.0), latency=0.01)
    npu = PhysicalDevice(
        sim, "npu", DeviceKind.ISP,  # closest existing kind
        local_memory=npu_memory, link=npu_link,
        op_costs={"infer": OpCost(fixed=3.0, bandwidth=gb_per_s(8.0))},
    )
    machine.add_device(npu)

    # 2. Port it into a running vSoC instance as a virtual device.
    emulator = make_vsoc(sim, machine, rng=random.Random(0))
    emulator.register_vdev("npu", npu)

    # 3. Drive a camera → NPU inference pipeline. No other changes: the
    #    twin hypergraphs learn the flow, prefetch starts covering it.
    read_latencies = []

    def pipeline():
        region = emulator.svm_alloc(UHD_FRAME_BYTES)
        for _ in range(30):
            write = yield from emulator.stage(
                "camera", "deliver", UHD_FRAME_BYTES, writes=[region]
            )
            yield write.done
            yield Timeout(12.0)
            infer = yield from emulator.stage(
                "npu", "infer", UHD_FRAME_BYTES, reads=[region]
            )
            read_latencies.append(infer.access_latency)
            yield infer.done

    sim.spawn(pipeline(), name="npu-pipeline")
    sim.run(until=3_000.0)

    stats = emulator.engine.stats
    prefetched = [
        r for r in emulator.trace.of_kind("coherence.maintenance")
        if r["path"] == "prefetch"
    ]
    print("Ported virtual NPU into vSoC (camera → NPU pipeline, 30 frames)")
    print(f"  NPU data location      : {emulator.vdev_location('npu')}")
    print(f"  prefetches to the NPU  : {len(prefetched)} "
          f"(host → npu over its own PCIe link)")
    print(f"  prediction accuracy    : {100 * stats.accuracy:.1f}%")
    print(f"  NPU read access latency: cold {read_latencies[0]:.2f} ms → "
          f"steady {sum(read_latencies[5:]) / len(read_latencies[5:]):.2f} ms")


if __name__ == "__main__":
    main()
