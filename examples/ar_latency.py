#!/usr/bin/env python3
"""Motion-to-photon latency of an AR app, machine by machine.

Reproduces the §5.3 latency findings interactively: vSoC's MTP stays well
under the 100 ms AR/VR comfort bound, baselines pile up queueing delay,
and the laptop's integrated camera beats the desktop's USB camera by
~10 ms of capture path (Figure 14's surprise).

Run:  python examples/ar_latency.py
"""

from repro.apps import ArApp
from repro.experiments.runner import run_app
from repro.hw.machine import HIGH_END_DESKTOP, MIDDLE_END_LAPTOP

DURATION_MS = 15_000.0


def main() -> None:
    print(f"{'Machine':20s} {'Emulator':12s} {'FPS':>6s} {'MTP avg':>9s} {'MTP p95':>9s}")
    print("-" * 62)
    for spec in (HIGH_END_DESKTOP, MIDDLE_END_LAPTOP):
        for emulator in ("vSoC", "GAE", "QEMU-KVM"):
            run = run_app(ArApp(), emulator, machine_spec=spec,
                          duration_ms=DURATION_MS)
            r = run.result
            print(f"{spec.name:20s} {emulator:12s} {r.fps:6.1f} "
                  f"{r.latency_avg:8.1f}ms {r.latency_p95:8.1f}ms")
        print()
    print("Notes: the AR/VR comfort bound is sub-100 ms motion-to-photon "
          "(§1). vSoC's laptop camera latency is *lower* than the desktop's "
          "despite the weaker machine — the integrated camera's capture "
          "path is ~10 ms faster than USB (§5.3).")


if __name__ == "__main__":
    main()
