#!/usr/bin/env python3
"""Anatomy of one camera frame: every copy, on both architectures.

Traces a single camera→ISP→GPU→display frame through (a) the guest-memory
baseline and (b) vSoC's unified SVM framework, printing each coherence
event with its timing — the §3.2 example of 4 copies collapsing into 2
(and into 0 for GPU-internal handoffs).

Run:  python examples/camera_pipeline.py
"""

import random

from repro.emulators import make_gae, make_vsoc
from repro.hw import HIGH_END_DESKTOP, build_machine
from repro.sim import Simulator, Timeout
from repro.units import UHD_DISPLAY_BUFFER_BYTES, UHD_FRAME_BYTES


def one_frame(emulator, sim):
    """Drive camera deliver → ISP convert → GPU render → display compose."""

    def frame():
        raw = emulator.svm_alloc(UHD_FRAME_BYTES)
        out = emulator.svm_alloc(UHD_FRAME_BYTES)
        fb = emulator.svm_alloc(UHD_DISPLAY_BUFFER_BYTES)
        # warm the hypergraphs with two frames, then trace the third
        for _ in range(3):
            deliver = yield from emulator.stage("camera", "deliver",
                                                UHD_FRAME_BYTES, writes=[raw])
            yield deliver.done
            convert = yield from emulator.stage("isp", emulator.convert_op(),
                                                UHD_FRAME_BYTES,
                                                reads=[raw], writes=[out])
            yield convert.done
            yield Timeout(8.0)  # slack until the compositor picks it up
            render = yield from emulator.stage("gpu", "render",
                                               UHD_DISPLAY_BUFFER_BYTES,
                                               reads=[out], writes=[fb])
            compose = yield from emulator.stage("display", "compose",
                                                UHD_DISPLAY_BUFFER_BYTES // 2,
                                                reads=[fb])
            yield compose.done
            yield Timeout(8.0)

    sim.spawn(frame(), name="camera-frame")
    sim.run(until=1_000.0)


def report(label, emulator, frames=3):
    events = emulator.trace.of_kind("coherence.maintenance")
    flushes = emulator.trace.of_kind("coherence.flush")
    total = sum(e["duration"] for e in events)
    print(f"\n{label}")
    print(f"  coherence maintenances: {len(events)} "
          f"({len(flushes)} guest-memory flushes)")
    for e in events[-4:]:
        mib = e["bytes"] / (1 << 20)
        print(f"    t={e.time:8.2f} ms  {e['path']:<22s} {mib:5.1f} MiB "
              f"in {e['duration']:.2f} ms")
    print(f"  total copy time over {frames} frames: {total:.2f} ms")


def main() -> None:
    for label, factory in (("Guest-memory baseline (GAE-style)", make_gae),
                           ("vSoC unified SVM framework", make_vsoc)):
        sim = Simulator()
        machine = build_machine(sim, HIGH_END_DESKTOP)
        emulator = factory(sim, machine, rng=random.Random(0))
        one_frame(emulator, sim)
        report(label, emulator)

    print("\nThe unified framework's camera frame costs one host→GPU DMA "
          "(~2.4 ms, prefetched under slack); the modular baseline pays two "
          "boundary crossings per device handoff — and even GPU→display, "
          "which shares one physical GPU, round-trips through guest memory.")


if __name__ == "__main__":
    main()
