#!/usr/bin/env python3
"""Quickstart: build vSoC, run a camera→GPU data pipeline, watch prefetch work.

This walks the core loop of the paper in ~40 lines of user code:

1. build a simulated host machine (the §5.1 high-end desktop);
2. build a vSoC emulator on it (unified SVM + prefetch + fences);
3. allocate a shared-memory region and drive write→read cycles across two
   devices with a realistic slack interval between them;
4. print what the SVM framework did: prediction accuracy, coherence cost,
   and the access latency the guest actually observed.

Run:  python examples/quickstart.py
"""

import random

from repro.emulators import make_vsoc
from repro.hw import HIGH_END_DESKTOP, build_machine
from repro.sim import Simulator, Timeout
from repro.units import MIB, UHD_FRAME_BYTES


def main() -> None:
    sim = Simulator()
    machine = build_machine(sim, HIGH_END_DESKTOP)
    emulator = make_vsoc(sim, machine, rng=random.Random(0))

    read_latencies = []

    def pipeline():
        # One SVM region, used as intermediate storage between the camera
        # (writes into host memory) and the GPU (reads into VRAM).
        region = emulator.svm_alloc(UHD_FRAME_BYTES)
        for frame in range(120):
            write = yield from emulator.stage(
                "camera", "deliver", UHD_FRAME_BYTES, writes=[region]
            )
            yield write.done  # the camera HAL callback
            yield Timeout(12.0)  # the slack interval (VSync pacing)
            read = yield from emulator.stage(
                "gpu", "render", UHD_FRAME_BYTES, reads=[region]
            )
            read_latencies.append(read.access_latency)
            yield read.done
        emulator.svm_free(region)

    sim.spawn(pipeline(), name="quickstart-pipeline")
    sim.run(until=5_000.0)

    stats = emulator.engine.stats
    coherence = emulator.trace.values("coherence.maintenance", "duration")
    print("vSoC quickstart — camera → GPU pipeline, 120 UHD frames")
    print(f"  prediction accuracy : {100 * stats.accuracy:.1f}% "
          f"({stats.hits}/{stats.predictions} predictions)")
    print(f"  prefetches launched : {stats.launched} "
          f"(cold starts: {stats.cold_starts})")
    print(f"  coherence cost      : {sum(coherence) / len(coherence):.2f} ms avg "
          f"(paper Table 2: 2.38 ms)")
    print(f"  read access latency : "
          f"first frame {read_latencies[0]:.2f} ms (cold miss), "
          f"steady state {sum(read_latencies[5:]) / len(read_latencies[5:]):.2f} ms")
    print(f"  framework overhead  : "
          f"{emulator.manager.memory_overhead_bytes() / MIB:.4f} MiB")


if __name__ == "__main__":
    main()
