#!/usr/bin/env python3
"""The prefetch engine's corner cases, exercised one by one (§3.3).

Four acts:

1. **Warm-up** — the first write of a new region has no history: no
   prefetch, the read pays a synchronous miss.
2. **Steady state** — predictions hit, copies hide under slack, reads cost
   only the page-map time.
3. **Short slack** — the pipeline tightens below the copy time; the driver
   starts *compensating* (Figure 8's time delta) so reads still don't block.
4. **Congestion** — external load drops the PCIe bandwidth under 50% of
   max; the engine suspends prefetching rather than waste the bus.

Run:  python examples/prefetch_anatomy.py
"""

import random

from repro.emulators import make_vsoc
from repro.hw import HIGH_END_DESKTOP, build_machine
from repro.sim import Simulator, Timeout
from repro.units import UHD_FRAME_BYTES


def run_phase(emulator, sim, region, cycles, slack):
    latencies, compensations = [], []

    def phase():
        for _ in range(cycles):
            write = yield from emulator.stage(
                "camera", "deliver", UHD_FRAME_BYTES, writes=[region]
            )
            compensations.append(write.compensation)
            yield write.done
            if slack > 0:
                yield Timeout(slack)
            read = yield from emulator.stage(
                "gpu", "render", UHD_FRAME_BYTES, reads=[region]
            )
            latencies.append(read.access_latency)
            yield read.done

    process = sim.spawn(phase(), name="phase")
    sim.run(until=sim.now + cycles * 80.0)
    assert not process.alive
    return latencies, compensations


def main() -> None:
    sim = Simulator()
    machine = build_machine(sim, HIGH_END_DESKTOP)
    emulator = make_vsoc(sim, machine, rng=random.Random(0))
    engine = emulator.engine
    region = emulator.svm_alloc(UHD_FRAME_BYTES)

    print("Act 1 — cold start (no flow history)")
    lats, _ = run_phase(emulator, sim, region, cycles=1, slack=12.0)
    print(f"  first read blocked {lats[0]:.2f} ms (synchronous miss); "
          f"cold starts: {engine.stats.cold_starts}")

    print("\nAct 2 — steady state (slack 12 ms > copy 2.4 ms)")
    lats, comps = run_phase(emulator, sim, region, cycles=20, slack=12.0)
    print(f"  read latency {sum(lats) / len(lats):.2f} ms avg; "
          f"compensation {sum(comps):.2f} ms total; "
          f"accuracy {100 * engine.stats.accuracy:.0f}%")

    print("\nAct 3 — tight pipeline (slack 0.5 ms < copy 2.4 ms)")
    lats, comps = run_phase(emulator, sim, region, cycles=20, slack=0.5)
    blocking = [c for c in comps if c > 0]
    print(f"  driver compensated on {len(blocking)}/20 writes "
          f"({sum(comps) / max(1, len(blocking)):.2f} ms each) — "
          f"reads still averaged {sum(lats) / len(lats):.2f} ms")

    print("\nAct 4 — bus congestion (PCIe at 40% of max bandwidth)")
    machine.pcie.set_load(0.6)
    run_phase(emulator, sim, region, cycles=10, slack=12.0)
    print(f"  bandwidth-rule skips: {engine.stats.bandwidth_skips} "
          f"(prefetch suspended instead of fighting the bus)")
    machine.pcie.set_load(0.0)

    stats = engine.stats
    print(f"\nTotals: {stats.launched} prefetches, {stats.predictions} "
          f"predictions, {stats.misses} misses, "
          f"{stats.compensations} compensated writes.")


if __name__ == "__main__":
    main()
