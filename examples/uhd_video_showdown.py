#!/usr/bin/env python3
"""UHD video playback across all six emulators — the Figure 10 story.

Plays the same 4K60 video app on vSoC and the five comparison emulators,
on the high-end desktop, and prints FPS plus where the frames went
(presented / dropped and why). This is the scenario from the paper's
introduction: video stalls on existing emulators, smooth playback on vSoC.

Run:  python examples/uhd_video_showdown.py
"""

from repro.apps import UhdVideoApp
from repro.emulators import EMULATOR_FACTORIES
from repro.experiments.runner import run_app

DURATION_MS = 15_000.0


def main() -> None:
    print(f"{'Emulator':12s} {'FPS':>6s} {'Presented':>10s} {'Dropped':>8s}  Why")
    print("-" * 70)
    for name in EMULATOR_FACTORIES:
        run = run_app(UhdVideoApp(), name, duration_ms=DURATION_MS)
        r = run.result
        if not r.ran:
            print(f"{name:12s} {'--':>6s}  ({r.fail_reason})")
            continue
        reasons = ", ".join(f"{k}={v}" for k, v in sorted(r.dropped.items())) or "-"
        print(f"{name:12s} {r.fps:6.1f} {r.presented:10d} "
              f"{sum(r.dropped.values()):8d}  {reasons}")

    print("\nPaper Figure 10 shape: vSoC ≈ 57 FPS; GAE ≈ half rate; "
          "QEMU-KVM/LDPlayer/Bluestacks progressively worse; Trinity worst "
          "(software codec inherited from Android-x86).")


if __name__ == "__main__":
    main()
